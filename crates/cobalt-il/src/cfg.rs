//! Control-flow graphs over procedures, plus well-formedness validation.
//!
//! One CFG node per statement; edges follow the fall-through/branch
//! structure of the IL. The entry node is index 0 (paper §3.2.2); exit
//! nodes are the `return` statements.

use crate::ast::{Index, Proc, Program, Stmt, Var};
use crate::error::WellFormedError;

/// The control-flow graph of a single procedure.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = cobalt_il::parse_program(
///     "proc main(x) { if x goto 2 else 1; skip; return x; }",
/// )?;
/// let cfg = cobalt_il::Cfg::new(prog.main().unwrap())?;
/// assert_eq!(cfg.successors(0), &[2, 1]);
/// assert_eq!(cfg.predecessors(2), &[0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    succs: Vec<Vec<Index>>,
    preds: Vec<Vec<Index>>,
    exits: Vec<Index>,
}

impl Cfg {
    /// Builds the CFG for `proc`, validating branch targets and the
    /// trailing-`return` requirement on the way.
    ///
    /// # Errors
    ///
    /// Returns a [`WellFormedError`] if the procedure is empty, does not
    /// end with `return`, or branches out of range.
    pub fn new(proc: &Proc) -> Result<Cfg, WellFormedError> {
        let n = proc.stmts.len();
        if n == 0 || !matches!(proc.stmts[n - 1], Stmt::Return(_)) {
            return Err(WellFormedError::MissingReturn(proc.name.to_string()));
        }
        let mut succs = vec![Vec::new(); n];
        let mut exits = Vec::new();
        for (i, s) in proc.stmts.iter().enumerate() {
            match s {
                Stmt::Return(_) => exits.push(i),
                Stmt::If {
                    then_target,
                    else_target,
                    ..
                } => {
                    for &t in [then_target, else_target] {
                        if t >= n {
                            return Err(WellFormedError::BadBranchTarget {
                                proc: proc.name.to_string(),
                                index: i,
                                target: t,
                            });
                        }
                    }
                    succs[i].push(*then_target);
                    if else_target != then_target {
                        succs[i].push(*else_target);
                    }
                }
                _ => {
                    if i + 1 >= n {
                        // A non-return, non-branch statement in final
                        // position would fall off the end; the trailing
                        // `return` check above already rejected this.
                        return Err(WellFormedError::MissingReturn(proc.name.to_string()));
                    }
                    succs[i].push(i + 1);
                }
            }
        }
        let mut preds = vec![Vec::new(); n];
        for (i, ss) in succs.iter().enumerate() {
            for &t in ss {
                preds[t].push(i);
            }
        }
        Ok(Cfg { succs, preds, exits })
    }

    /// Number of nodes (statements).
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the CFG has no nodes. Always false for a valid CFG.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The entry node index (always 0).
    pub fn entry(&self) -> Index {
        0
    }

    /// The exit nodes, i.e. indices of `return` statements.
    pub fn exits(&self) -> &[Index] {
        &self.exits
    }

    /// Successors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn successors(&self, i: Index) -> &[Index] {
        &self.succs[i]
    }

    /// Predecessors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn predecessors(&self, i: Index) -> &[Index] {
        &self.preds[i]
    }

    /// Nodes reachable from the entry, in a deterministic BFS order.
    pub fn reachable(&self) -> Vec<Index> {
        let mut seen = vec![false; self.len()];
        let mut queue = std::collections::VecDeque::from([self.entry()]);
        let mut order = Vec::new();
        seen[self.entry()] = true;
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &s in self.successors(i) {
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        order
    }
}

/// Checks the global well-formedness conditions of paper §3.1: a `main`
/// procedure exists, procedure names are unique, no procedure declares a
/// local twice, every procedure ends in `return` with in-range branch
/// targets, and every callee exists.
///
/// # Errors
///
/// Returns the first violation found.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = cobalt_il::parse_program("proc main(x) { return x; }")?;
/// cobalt_il::validate(&prog)?;
/// # Ok(())
/// # }
/// ```
pub fn validate(prog: &Program) -> Result<(), WellFormedError> {
    if prog.main().is_none() {
        return Err(WellFormedError::NoMain);
    }
    for (i, p) in prog.procs.iter().enumerate() {
        if prog.procs[..i].iter().any(|q| q.name == p.name) {
            return Err(WellFormedError::DuplicateProc(p.name.to_string()));
        }
        let mut declared: Vec<&Var> = Vec::new();
        for (idx, s) in p.stmts.iter().enumerate() {
            if let Stmt::Decl(v) = s {
                if declared.contains(&v) {
                    return Err(WellFormedError::DuplicateDecl {
                        proc: p.name.to_string(),
                        var: v.to_string(),
                    });
                }
                declared.push(v);
            }
            if let Stmt::Call { proc: callee, .. } = s {
                if prog.proc(callee).is_none() {
                    return Err(WellFormedError::UnknownProc {
                        proc: p.name.to_string(),
                        index: idx,
                        callee: callee.to_string(),
                    });
                }
            }
        }
        Cfg::new(p)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn cfg_of(body: &str) -> Result<Cfg, WellFormedError> {
        let src = format!("proc main(x) {{ {body} }}");
        let prog = parse_program(&src).unwrap();
        Cfg::new(prog.main().unwrap())
    }

    #[test]
    fn straight_line_edges() {
        let cfg = cfg_of("skip; skip; return x;").unwrap();
        assert_eq!(cfg.successors(0), &[1]);
        assert_eq!(cfg.successors(1), &[2]);
        assert_eq!(cfg.successors(2), &[] as &[usize]);
        assert_eq!(cfg.exits(), &[2]);
    }

    #[test]
    fn branch_edges_and_merge_preds() {
        let cfg = cfg_of("if x goto 2 else 1; skip; return x;").unwrap();
        assert_eq!(cfg.successors(0), &[2, 1]);
        assert_eq!(cfg.predecessors(2), &[0, 1]);
    }

    #[test]
    fn self_loop_allowed() {
        let cfg = cfg_of("if x goto 0 else 1; return x;").unwrap();
        assert_eq!(cfg.successors(0), &[0, 1]);
        assert_eq!(cfg.predecessors(0), &[0]);
    }

    #[test]
    fn identical_targets_deduplicated() {
        let cfg = cfg_of("if x goto 1 else 1; return x;").unwrap();
        assert_eq!(cfg.successors(0), &[1]);
    }

    #[test]
    fn rejects_out_of_range_target() {
        let err = cfg_of("if x goto 9 else 1; return x;").unwrap_err();
        assert!(matches!(err, WellFormedError::BadBranchTarget { target: 9, .. }));
    }

    #[test]
    fn rejects_missing_return() {
        assert!(matches!(
            cfg_of("skip; skip;").unwrap_err(),
            WellFormedError::MissingReturn(_)
        ));
    }

    #[test]
    fn multiple_returns_are_exits() {
        let cfg = cfg_of("if x goto 2 else 1; return x; return x;").unwrap();
        assert_eq!(cfg.exits(), &[1, 2]);
    }

    #[test]
    fn reachable_skips_dead_code() {
        let cfg = cfg_of("if x goto 3 else 3; skip; skip; return x;").unwrap();
        assert_eq!(cfg.reachable(), vec![0, 3]);
    }

    #[test]
    fn validate_full_program() {
        let good = parse_program(
            "proc main(x) { y := f(1); return y; } proc f(a) { return a; }",
        )
        .unwrap();
        assert!(validate(&good).is_ok());

        let no_main = parse_program("proc f(a) { return a; }").unwrap();
        assert_eq!(validate(&no_main).unwrap_err(), WellFormedError::NoMain);

        let dup = parse_program("proc main(x) { return x; } proc main(y) { return y; }").unwrap();
        assert!(matches!(
            validate(&dup).unwrap_err(),
            WellFormedError::DuplicateProc(_)
        ));

        let dup_decl =
            parse_program("proc main(x) { decl y; decl y; return x; }").unwrap();
        assert!(matches!(
            validate(&dup_decl).unwrap_err(),
            WellFormedError::DuplicateDecl { .. }
        ));

        let unknown = parse_program("proc main(x) { y := g(1); return y; }").unwrap();
        assert!(matches!(
            validate(&unknown).unwrap_err(),
            WellFormedError::UnknownProc { .. }
        ));
    }
}
