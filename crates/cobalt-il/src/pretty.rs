//! Pretty-printing of programs and procedures.
//!
//! The output is re-parseable by [`crate::parse_program`] and annotates
//! each statement with its index, which makes branch targets readable.

use crate::ast::{Proc, Program};
use std::fmt::Write as _;

/// Renders a procedure with `// ι:` index annotations.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = cobalt_il::parse_program("proc main(x) { skip; return x; }")?;
/// let text = cobalt_il::pretty_proc(prog.main().unwrap());
/// assert!(text.contains("/* 0 */ skip;"));
/// # Ok(())
/// # }
/// ```
pub fn pretty_proc(proc: &Proc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "proc {}({}) {{", proc.name, proc.param);
    for (i, s) in proc.stmts.iter().enumerate() {
        let _ = writeln!(out, "    /* {i} */ {s};");
    }
    out.push_str("}\n");
    out
}

/// Renders a whole program; see [`pretty_proc`].
pub fn pretty_program(prog: &Program) -> String {
    let mut out = String::new();
    for (i, p) in prog.procs.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&pretty_proc(p));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn output_reparses_to_same_program() {
        let src = "
            proc main(a) {
                decl y;
                y := a + 1;
                if y goto 4 else 3;
                y := 0;
                return y;
            }
            proc f(b) { return b; }
        ";
        let prog = parse_program(src).unwrap();
        let printed = pretty_program(&prog);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn indices_annotated() {
        let prog = parse_program("proc main(x) { skip; skip; return x; }").unwrap();
        let text = pretty_proc(prog.main().unwrap());
        assert!(text.contains("/* 0 */"));
        assert!(text.contains("/* 2 */ return x;"));
    }
}
