//! Concrete interpreter for the intermediate language.
//!
//! Implements the state-transition function `→π` of paper §3.1 over
//! states `η = (ι, ρ, σ, ξ, M)`:
//!
//! * `ι` — the index of the statement about to execute ([`State::index`]),
//! * `ρ` — the environment mapping in-scope variables to locations,
//! * `σ` — the store mapping locations to values,
//! * `ξ` — the dynamic call chain,
//! * `M` — the allocator, a monotone counter of fresh locations.
//!
//! Run-time errors are modeled as *stuckness*: [`step`](Interp::step)
//! returns [`EvalError::Stuck`] exactly when the paper's `→π` has no
//! successor state. The intraprocedural transition `↪π`, which steps
//! *over* procedure calls, is [`Interp::step_over`].

use crate::ast::{BaseExpr, Expr, Index, Lhs, OpKind, Proc, ProcName, Program, Stmt, Var};
use crate::error::EvalError;
use std::collections::HashMap;
use std::fmt;

/// A memory location, produced by the allocator `M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Location(u64);

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A run-time value: an integer constant or a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A pointer to a location.
    Loc(Location),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Loc(l) => write!(f, "{l}"),
        }
    }
}

/// A suspended caller on the dynamic call chain `ξ`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Frame {
    proc: ProcName,
    env: HashMap<Var, Location>,
    /// Caller variable receiving the return value.
    dst: Var,
    /// Index of the call statement; execution resumes at `resume + 1`.
    resume: Index,
}

/// An execution state `η = (ι, ρ, σ, ξ, M)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    proc: ProcName,
    index: Index,
    env: HashMap<Var, Location>,
    store: HashMap<Location, Value>,
    stack: Vec<Frame>,
    next_loc: u64,
}

impl State {
    /// The procedure currently executing.
    pub fn proc(&self) -> &ProcName {
        &self.proc
    }

    /// The index `ι` of the statement about to execute — the paper's
    /// `index(η)` accessor.
    pub fn index(&self) -> Index {
        self.index
    }

    /// Depth of the dynamic call chain (0 in `main`).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// `η(x)` — the value of variable `x` in this state, if declared.
    pub fn value_of(&self, x: &Var) -> Option<Value> {
        let loc = self.env.get(x)?;
        self.store.get(loc).copied()
    }

    /// The location `ρ(x)` of variable `x`, if declared.
    pub fn location_of(&self, x: &Var) -> Option<Location> {
        self.env.get(x).copied()
    }

    /// The value stored at a location, if any.
    pub fn load(&self, loc: Location) -> Option<Value> {
        self.store.get(&loc).copied()
    }

    /// Whether any location in the store holds a pointer to `x`'s
    /// location — the negation of the paper's `notPointedTo(x, η)`.
    pub fn is_pointed_to(&self, x: &Var) -> bool {
        match self.env.get(x) {
            None => false,
            Some(loc) => self.store.values().any(|v| *v == Value::Loc(*loc)),
        }
    }
}

/// One executed statement in a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// The procedure executing.
    pub proc: ProcName,
    /// The statement index `ι`.
    pub index: Index,
    /// The statement itself (`None` if the index was out of range).
    pub stmt: Option<Stmt>,
    /// Call-chain depth (0 in `main`).
    pub depth: usize,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let indent = "  ".repeat(self.depth);
        match &self.stmt {
            Some(s) => write!(f, "{indent}{}:{} {s}", self.proc, self.index),
            None => write!(f, "{indent}{}:{} <out of range>", self.proc, self.index),
        }
    }
}

/// The result of one transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// Execution continues in the given state.
    Continue(State),
    /// `main` returned with this value.
    Done(Value),
}

/// An interpreter for a fixed program, with a step budget.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use cobalt_il::{parse_program, Interp, Value};
/// let prog = parse_program("proc main(x) { decl y; y := x + 1; return y; }")?;
/// let result = Interp::new(&prog).run(41)?;
/// assert_eq!(result, Value::Int(42));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Interp<'a> {
    program: &'a Program,
    fuel: u64,
}

/// Default step budget for [`Interp::run`].
pub const DEFAULT_FUEL: u64 = 1_000_000;

impl<'a> Interp<'a> {
    /// Creates an interpreter with the default step budget.
    pub fn new(program: &'a Program) -> Self {
        Interp {
            program,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Sets the step budget used by [`run`](Self::run) and
    /// [`step_over`](Self::step_over).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// The initial state of `main(arg)`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::IllFormed`] if the program has no `main`.
    pub fn initial_state(&self, arg: i64) -> Result<State, EvalError> {
        let main = self
            .program
            .main()
            .ok_or(EvalError::IllFormed(crate::error::WellFormedError::NoMain))?;
        let mut st = State {
            proc: main.name.clone(),
            index: 0,
            env: HashMap::new(),
            store: HashMap::new(),
            stack: Vec::new(),
            next_loc: 0,
        };
        let loc = alloc(&mut st);
        st.env.insert(main.param.clone(), loc);
        st.store.insert(loc, Value::Int(arg));
        Ok(st)
    }

    /// Runs `main(arg)` to completion.
    ///
    /// # Errors
    ///
    /// * [`EvalError::Stuck`] on a run-time error (the paper's model),
    /// * [`EvalError::OutOfFuel`] if the step budget is exhausted,
    /// * [`EvalError::IllFormed`] if there is no `main` procedure.
    pub fn run(&self, arg: i64) -> Result<Value, EvalError> {
        let mut st = self.initial_state(arg)?;
        for _ in 0..self.fuel {
            match self.step(st)? {
                StepOutcome::Continue(next) => st = next,
                StepOutcome::Done(v) => return Ok(v),
            }
        }
        Err(EvalError::OutOfFuel)
    }

    /// Runs `main(arg)`, recording the execution trace: one
    /// [`TraceEntry`] per `→π` transition, in order.
    ///
    /// The trace is capped at the step budget, so it is safe on
    /// nonterminating programs.
    ///
    /// # Errors
    ///
    /// As for [`run`](Self::run); on error the partial trace up to the
    /// fault is returned alongside.
    pub fn run_traced(&self, arg: i64) -> (Vec<TraceEntry>, Result<Value, EvalError>) {
        let mut trace = Vec::new();
        let mut st = match self.initial_state(arg) {
            Ok(st) => st,
            Err(e) => return (trace, Err(e)),
        };
        for _ in 0..self.fuel {
            let stmt = self
                .current_proc(&st)
                .ok()
                .and_then(|p| p.stmt_at(st.index))
                .cloned();
            let entry = TraceEntry {
                proc: st.proc.clone(),
                index: st.index,
                stmt,
                depth: st.depth(),
            };
            match self.step(st) {
                Ok(StepOutcome::Continue(next)) => {
                    trace.push(entry);
                    st = next;
                }
                Ok(StepOutcome::Done(v)) => {
                    trace.push(entry);
                    return (trace, Ok(v));
                }
                Err(e) => {
                    trace.push(entry);
                    return (trace, Err(e));
                }
            }
        }
        (trace, Err(EvalError::OutOfFuel))
    }

    fn current_proc(&self, st: &State) -> Result<&'a Proc, EvalError> {
        self.program.proc(&st.proc).ok_or_else(|| stuck(st, "unknown procedure"))
    }

    /// One transition of `→π`.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Stuck`] when the paper's `→π` has no
    /// successor (run-time error).
    pub fn step(&self, mut st: State) -> Result<StepOutcome, EvalError> {
        let proc = self.current_proc(&st)?;
        let stmt = proc
            .stmt_at(st.index)
            .ok_or_else(|| stuck(&st, "statement index out of range"))?
            .clone();
        match stmt {
            Stmt::Decl(x) => {
                if st.env.contains_key(&x) {
                    return Err(stuck(&st, format!("duplicate declaration of `{x}`")));
                }
                let loc = alloc(&mut st);
                st.env.insert(x, loc);
                st.store.insert(loc, Value::Int(0));
                advance(st)
            }
            Stmt::Skip => advance(st),
            Stmt::Assign(lhs, e) => {
                let v = eval_expr(&st, &e)?;
                let loc = eval_lhs(&st, &lhs)?;
                st.store.insert(loc, v);
                advance(st)
            }
            Stmt::New(x) => {
                let target = lookup_loc(&st, &x)?;
                let fresh = alloc(&mut st);
                st.store.insert(fresh, Value::Int(0));
                st.store.insert(target, Value::Loc(fresh));
                advance(st)
            }
            Stmt::Call { dst, proc: callee, arg } => {
                // The destination must be declared in the caller before
                // the call, so the return can store into it.
                lookup_loc(&st, &dst)?;
                let callee_proc = self
                    .program
                    .proc(&callee)
                    .ok_or_else(|| stuck(&st, format!("call to unknown procedure `{callee}`")))?;
                let arg_val = eval_base(&st, &arg)?;
                let frame = Frame {
                    proc: st.proc.clone(),
                    env: std::mem::take(&mut st.env),
                    dst,
                    resume: st.index,
                };
                st.stack.push(frame);
                st.proc = callee_proc.name.clone();
                st.index = 0;
                let loc = alloc(&mut st);
                st.env.insert(callee_proc.param.clone(), loc);
                st.store.insert(loc, arg_val);
                Ok(StepOutcome::Continue(st))
            }
            Stmt::If {
                cond,
                then_target,
                else_target,
            } => {
                let v = eval_base(&st, &cond)?;
                let taken = match v {
                    Value::Int(n) => {
                        if n != 0 {
                            then_target
                        } else {
                            else_target
                        }
                    }
                    Value::Loc(_) => return Err(stuck(&st, "branch on a pointer value")),
                };
                if taken >= proc.len() {
                    return Err(stuck(&st, format!("branch target {taken} out of range")));
                }
                st.index = taken;
                Ok(StepOutcome::Continue(st))
            }
            Stmt::Return(x) => {
                let v = st.value_of(&x).ok_or_else(|| {
                    stuck(&st, format!("return of undeclared variable `{x}`"))
                })?;
                match st.stack.pop() {
                    None => Ok(StepOutcome::Done(v)),
                    Some(frame) => {
                        st.proc = frame.proc;
                        st.env = frame.env;
                        st.index = frame.resume + 1;
                        let loc = lookup_loc(&st, &frame.dst)?;
                        st.store.insert(loc, v);
                        Ok(StepOutcome::Continue(st))
                    }
                }
            }
        }
    }

    /// One transition of the intraprocedural function `↪π`, which behaves
    /// like `→π` except that procedure calls are stepped *over*: the
    /// callee runs to completion (within the step budget) and the
    /// returned state is back in the calling procedure.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Stuck`] if execution faults, and
    /// [`EvalError::OutOfFuel`] if a stepped-over call does not return
    /// within the budget (the paper models unreturning calls as the
    /// absence of an `↪π` transition).
    pub fn step_over(&self, st: State) -> Result<StepOutcome, EvalError> {
        let depth = st.depth();
        let mut cur = match self.step(st)? {
            StepOutcome::Continue(s) => s,
            done => return Ok(done),
        };
        let mut remaining = self.fuel;
        while cur.depth() > depth {
            if remaining == 0 {
                return Err(EvalError::OutOfFuel);
            }
            remaining -= 1;
            cur = match self.step(cur)? {
                StepOutcome::Continue(s) => s,
                done => return Ok(done),
            };
        }
        Ok(StepOutcome::Continue(cur))
    }
}

fn alloc(st: &mut State) -> Location {
    let loc = Location(st.next_loc);
    st.next_loc += 1;
    loc
}

fn advance(mut st: State) -> Result<StepOutcome, EvalError> {
    st.index += 1;
    Ok(StepOutcome::Continue(st))
}

fn stuck(st: &State, reason: impl Into<String>) -> EvalError {
    EvalError::Stuck {
        proc: st.proc.to_string(),
        index: st.index,
        reason: reason.into(),
    }
}

fn lookup_loc(st: &State, x: &Var) -> Result<Location, EvalError> {
    st.location_of(x)
        .ok_or_else(|| stuck(st, format!("undeclared variable `{x}`")))
}

fn lookup_val(st: &State, x: &Var) -> Result<Value, EvalError> {
    st.value_of(x)
        .ok_or_else(|| stuck(st, format!("undeclared variable `{x}`")))
}

/// Evaluates a base expression in a state.
///
/// # Errors
///
/// Returns [`EvalError::Stuck`] for an undeclared variable.
pub fn eval_base(st: &State, b: &BaseExpr) -> Result<Value, EvalError> {
    match b {
        BaseExpr::Var(x) => lookup_val(st, x),
        BaseExpr::Const(c) => Ok(Value::Int(*c)),
    }
}

/// Evaluates an expression in a state — the paper's `evalExpr(η, e)`.
///
/// # Errors
///
/// Returns [`EvalError::Stuck`] for undeclared variables, dereferences of
/// non-pointers, and operator faults (see [`eval_op`]).
pub fn eval_expr(st: &State, e: &Expr) -> Result<Value, EvalError> {
    match e {
        Expr::Base(b) => eval_base(st, b),
        Expr::Deref(x) => match lookup_val(st, x)? {
            Value::Loc(loc) => st
                .load(loc)
                .ok_or_else(|| stuck(st, format!("dangling pointer in `{x}`"))),
            Value::Int(_) => Err(stuck(st, format!("dereference of non-pointer `{x}`"))),
        },
        Expr::AddrOf(x) => Ok(Value::Loc(lookup_loc(st, x)?)),
        Expr::Op(op, args) => {
            let mut ints = Vec::with_capacity(args.len());
            for a in args {
                match eval_base(st, a)? {
                    Value::Int(n) => ints.push(n),
                    Value::Loc(_) => {
                        return Err(stuck(st, "operator applied to a pointer value"))
                    }
                }
            }
            let n = eval_op(*op, &ints)
                .ok_or_else(|| stuck(st, format!("operator `{op}` fault")))?;
            Ok(Value::Int(n))
        }
    }
}

/// Computes the location an assignment writes — the paper's
/// `evalLExpr(η, lhs)`.
///
/// # Errors
///
/// Returns [`EvalError::Stuck`] for undeclared variables or a store
/// through a non-pointer.
pub fn eval_lhs(st: &State, lhs: &Lhs) -> Result<Location, EvalError> {
    match lhs {
        Lhs::Var(x) => lookup_loc(st, x),
        Lhs::Deref(x) => match lookup_val(st, x)? {
            Value::Loc(loc) => Ok(loc),
            Value::Int(_) => Err(stuck(st, format!("store through non-pointer `{x}`"))),
        },
    }
}

/// Pure evaluation of an operator on integers.
///
/// Returns `None` on arity mismatch, division/remainder by zero, or
/// overflow — all of which are run-time errors at the statement level.
/// This function is shared with the constant-folding optimization and
/// with the logical encoding of operators in `cobalt-verify`, so that
/// "fold" and "prove" agree exactly.
pub fn eval_op(op: OpKind, args: &[i64]) -> Option<i64> {
    fn truth(b: bool) -> i64 {
        if b {
            1
        } else {
            0
        }
    }
    let binary = |f: fn(i64, i64) -> Option<i64>| -> Option<i64> {
        if args.len() == 2 {
            f(args[0], args[1])
        } else {
            None
        }
    };
    match op {
        OpKind::Add => args.iter().try_fold(0i64, |acc, &n| acc.checked_add(n)),
        OpKind::Sub => {
            if args.len() == 1 {
                args[0].checked_neg()
            } else if args.is_empty() {
                None
            } else {
                args[1..]
                    .iter()
                    .try_fold(args[0], |acc, &n| acc.checked_sub(n))
            }
        }
        OpKind::Mul => args.iter().try_fold(1i64, |acc, &n| acc.checked_mul(n)),
        OpKind::Div => binary(|a, b| a.checked_div(b)),
        OpKind::Mod => binary(|a, b| a.checked_rem(b)),
        OpKind::Eq => binary(|a, b| Some(truth(a == b))),
        OpKind::Ne => binary(|a, b| Some(truth(a != b))),
        OpKind::Lt => binary(|a, b| Some(truth(a < b))),
        OpKind::Le => binary(|a, b| Some(truth(a <= b))),
        OpKind::Gt => binary(|a, b| Some(truth(a > b))),
        OpKind::Ge => binary(|a, b| Some(truth(a >= b))),
        OpKind::And => {
            if args.is_empty() {
                None
            } else {
                Some(truth(args.iter().all(|&n| n != 0)))
            }
        }
        OpKind::Or => {
            if args.is_empty() {
                None
            } else {
                Some(truth(args.iter().any(|&n| n != 0)))
            }
        }
        OpKind::Not => {
            if args.len() == 1 {
                Some(truth(args[0] == 0))
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, arg: i64) -> Result<Value, EvalError> {
        let prog = parse_program(src).unwrap();
        Interp::new(&prog).run(arg)
    }

    #[test]
    fn arithmetic_and_temporaries() {
        let v = run(
            "proc main(x) { decl y; y := x + 2; decl z; z := y * y; return z; }",
            3,
        )
        .unwrap();
        assert_eq!(v, Value::Int(25));
    }

    #[test]
    fn branch_loop_countdown() {
        // while (x != 0) { s := s + x; x := x - 1 } return s
        let src = "
            proc main(x) {
                decl s;
                if x goto 2 else 5;
                s := s + x;
                x := x - 1;
                if x goto 2 else 5;
                return s;
            }
        ";
        assert_eq!(run(src, 4).unwrap(), Value::Int(10));
        assert_eq!(run(src, 0).unwrap(), Value::Int(0));
    }

    #[test]
    fn pointers_to_locals() {
        let src = "
            proc main(x) {
                decl y;
                decl p;
                p := &y;
                *p := 7;
                decl z;
                z := *p;
                z := z + y;
                return z;
            }
        ";
        assert_eq!(run(src, 0).unwrap(), Value::Int(14));
    }

    #[test]
    fn heap_allocation() {
        let src = "
            proc main(x) {
                decl p;
                p := new;
                *p := 5;
                decl q;
                q := p;
                decl r;
                r := *q;
                return r;
            }
        ";
        assert_eq!(run(src, 0).unwrap(), Value::Int(5));
    }

    #[test]
    fn recursive_factorial() {
        let src = "
            proc main(x) {
                decl r;
                r := fact(x);
                return r;
            }
            proc fact(n) {
                decl r;
                r := 1;
                if n goto 3 else 7;
                decl m;
                m := n - 1;
                r := fact(m);
                r := r * n;
                return r;
            }
        ";
        assert_eq!(run(src, 5).unwrap(), Value::Int(120));
        assert_eq!(run(src, 0).unwrap(), Value::Int(1));
    }

    #[test]
    fn stuck_on_undeclared_variable() {
        let err = run("proc main(x) { y := 1; return x; }", 0).unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }), "{err}");
    }

    #[test]
    fn stuck_on_deref_of_integer() {
        let err = run("proc main(x) { decl y; y := *x; return y; }", 3).unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }));
    }

    #[test]
    fn stuck_on_store_through_integer() {
        let err = run("proc main(x) { *x := 1; return x; }", 3).unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }));
    }

    #[test]
    fn stuck_on_division_by_zero() {
        let err = run("proc main(x) { decl y; y := 1 / x; return y; }", 0).unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }));
    }

    #[test]
    fn stuck_on_pointer_arithmetic() {
        let err = run(
            "proc main(x) { decl p; p := &x; decl y; y := p + 1; return y; }",
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }));
    }

    #[test]
    fn stuck_on_branch_on_pointer() {
        let err = run(
            "proc main(x) { decl p; p := &x; if p goto 0 else 3; return x; }",
            0,
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Stuck { .. }));
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let prog = parse_program("proc main(x) { if 1 goto 0 else 1; return x; }").unwrap();
        let err = Interp::new(&prog).with_fuel(1000).run(0).unwrap_err();
        assert_eq!(err, EvalError::OutOfFuel);
    }

    #[test]
    fn step_over_skips_calls() {
        let src = "
            proc main(x) {
                decl r;
                r := double(x);
                return r;
            }
            proc double(n) {
                decl m;
                m := n + n;
                return m;
            }
        ";
        let prog = parse_program(src).unwrap();
        let interp = Interp::new(&prog);
        let st0 = interp.initial_state(21).unwrap();
        // decl r
        let st1 = match interp.step_over(st0).unwrap() {
            StepOutcome::Continue(s) => s,
            _ => panic!(),
        };
        assert_eq!(st1.index(), 1);
        // r := double(x): one ↪ step lands back in main at index 2.
        let st2 = match interp.step_over(st1).unwrap() {
            StepOutcome::Continue(s) => s,
            _ => panic!(),
        };
        assert_eq!(st2.proc().as_str(), "main");
        assert_eq!(st2.index(), 2);
        assert_eq!(st2.value_of(&Var::new("r")), Some(Value::Int(42)));
    }

    #[test]
    fn step_over_nonreturning_call_is_out_of_fuel() {
        let src = "
            proc main(x) {
                decl r;
                r := spin(x);
                return r;
            }
            proc spin(n) {
                if 1 goto 0 else 1;
                return n;
            }
        ";
        let prog = parse_program(src).unwrap();
        let interp = Interp::new(&prog).with_fuel(500);
        let st0 = interp.initial_state(0).unwrap();
        let st1 = match interp.step_over(st0).unwrap() {
            StepOutcome::Continue(s) => s,
            _ => panic!(),
        };
        assert_eq!(interp.step_over(st1).unwrap_err(), EvalError::OutOfFuel);
    }

    #[test]
    fn eval_op_table() {
        assert_eq!(eval_op(OpKind::Add, &[1, 2, 3]), Some(6));
        assert_eq!(eval_op(OpKind::Sub, &[5]), Some(-5));
        assert_eq!(eval_op(OpKind::Sub, &[5, 2]), Some(3));
        assert_eq!(eval_op(OpKind::Mul, &[3, 4]), Some(12));
        assert_eq!(eval_op(OpKind::Div, &[7, 2]), Some(3));
        assert_eq!(eval_op(OpKind::Div, &[7, 0]), None);
        assert_eq!(eval_op(OpKind::Mod, &[7, 0]), None);
        assert_eq!(eval_op(OpKind::Eq, &[2, 2]), Some(1));
        assert_eq!(eval_op(OpKind::Ne, &[2, 2]), Some(0));
        assert_eq!(eval_op(OpKind::Lt, &[1, 2]), Some(1));
        assert_eq!(eval_op(OpKind::Le, &[2, 2]), Some(1));
        assert_eq!(eval_op(OpKind::Gt, &[1, 2]), Some(0));
        assert_eq!(eval_op(OpKind::Ge, &[1, 2]), Some(0));
        assert_eq!(eval_op(OpKind::And, &[1, 2]), Some(1));
        assert_eq!(eval_op(OpKind::And, &[1, 0]), Some(0));
        assert_eq!(eval_op(OpKind::Or, &[0, 0]), Some(0));
        assert_eq!(eval_op(OpKind::Not, &[0]), Some(1));
        assert_eq!(eval_op(OpKind::Not, &[3]), Some(0));
        assert_eq!(eval_op(OpKind::Not, &[1, 2]), None);
        assert_eq!(eval_op(OpKind::Add, &[i64::MAX, 1]), None);
    }

    #[test]
    fn run_traced_records_calls_with_depth() {
        let src = "
            proc main(x) {
                decl r;
                r := double(x);
                return r;
            }
            proc double(n) {
                decl m;
                m := n + n;
                return m;
            }
        ";
        let prog = parse_program(src).unwrap();
        let (trace, result) = Interp::new(&prog).run_traced(21);
        assert_eq!(result.unwrap(), Value::Int(42));
        // main(2 stmts) + call + callee(3 stmts) + return in main.
        assert_eq!(trace.len(), 6);
        assert_eq!(trace[2].proc.as_str(), "double");
        assert_eq!(trace[2].depth, 1);
        assert!(trace[2].to_string().starts_with("  double:0"));
        assert_eq!(trace[5].to_string(), "main:2 return r");
    }

    #[test]
    fn run_traced_returns_partial_trace_on_fault() {
        let prog =
            parse_program("proc main(x) { decl y; y := 1 / x; return y; }").unwrap();
        let (trace, result) = Interp::new(&prog).run_traced(0);
        assert!(matches!(result, Err(EvalError::Stuck { index: 1, .. })));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].to_string(), "main:1 y := 1 / x");
    }

    #[test]
    fn is_pointed_to_tracks_address_taken() {
        let src = "
            proc main(x) {
                decl y;
                decl p;
                p := &y;
                return x;
            }
        ";
        let prog = parse_program(src).unwrap();
        let interp = Interp::new(&prog);
        let mut st = interp.initial_state(0).unwrap();
        for _ in 0..2 {
            st = match interp.step(st).unwrap() {
                StepOutcome::Continue(s) => s,
                _ => panic!(),
            };
        }
        assert!(!st.is_pointed_to(&Var::new("y")));
        st = match interp.step(st).unwrap() {
            StepOutcome::Continue(s) => s,
            _ => panic!(),
        };
        assert!(st.is_pointed_to(&Var::new("y")));
    }
}
