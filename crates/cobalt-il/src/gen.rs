//! Random well-formed program generation.
//!
//! Used by the differential soundness tests (paper Theorems 1 and 2,
//! checked empirically in experiment E7) and by the scaling benchmarks.
//! Generated programs always validate; they terminate because branches
//! only jump forward. They are deliberately redundancy-rich (repeated
//! constants, copies, recomputed expressions) so that the optimization
//! library has plenty of opportunities to fire.

use crate::ast::{BaseExpr, Expr, Lhs, OpKind, Proc, Program, Stmt, Var};
use cobalt_support::Rng;

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Number of local variables declared in `main` (min 2).
    pub num_vars: usize,
    /// Approximate number of body statements in `main`.
    pub num_stmts: usize,
    /// Number of straight-line helper procedures callable from `main`.
    pub num_helpers: usize,
    /// Probability in `[0,1]` that a statement involves pointers.
    pub pointer_ratio: f64,
    /// Probability in `[0,1]` that a statement is a forward branch.
    pub branch_ratio: f64,
    /// Probability in `[0,1]` that a statement is a call (if helpers exist).
    pub call_ratio: f64,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            num_vars: 5,
            num_stmts: 20,
            num_helpers: 1,
            pointer_ratio: 0.15,
            branch_ratio: 0.1,
            call_ratio: 0.05,
            seed: 0,
        }
    }
}

impl GenConfig {
    /// A configuration sized for benchmarks: `num_stmts` statements,
    /// defaults elsewhere.
    pub fn sized(num_stmts: usize, seed: u64) -> Self {
        GenConfig {
            num_stmts,
            num_vars: (num_stmts / 4).clamp(3, 12),
            seed,
            ..GenConfig::default()
        }
    }
}

/// Generates a random well-formed program.
///
/// The result always passes [`crate::validate`] and terminates on every
/// input (branches only jump forward), though individual runs may still
/// fault (e.g. division by zero), which the paper models as stuckness.
///
/// # Examples
///
/// ```
/// use cobalt_il::{generate, validate, GenConfig};
/// let prog = generate(&GenConfig::default());
/// assert!(validate(&prog).is_ok());
/// ```
pub fn generate(config: &GenConfig) -> Program {
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut procs = Vec::new();
    let helper_names: Vec<String> = (0..config.num_helpers).map(|i| format!("h{i}")).collect();
    for name in &helper_names {
        procs.push(gen_helper(name, &mut rng));
    }
    let main = gen_main(config, &helper_names, &mut rng);
    let mut all = vec![main];
    all.extend(procs);
    Program::new(all)
}

fn pick<'a, T>(rng: &mut Rng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

fn small_const(rng: &mut Rng) -> i64 {
    // Small palette: encourages repeated constants, enabling const-prop,
    // CSE and branch folding to fire.
    *pick(rng, &[0, 1, 2, 3, 5, 7])
}

fn gen_helper(name: &str, rng: &mut Rng) -> Proc {
    // Straight-line: decl t; t := <expr over n>; ...; return t.
    let n = Var::new("n");
    let t = Var::new("t");
    let mut stmts = vec![Stmt::Decl(t.clone())];
    let count = rng.gen_range(1..4);
    for _ in 0..count {
        let op = *pick(rng, &[OpKind::Add, OpKind::Sub, OpKind::Mul]);
        let rhs = if rng.gen_bool(0.5) {
            BaseExpr::Const(small_const(rng))
        } else {
            BaseExpr::Var(n.clone())
        };
        stmts.push(Stmt::Assign(
            Lhs::Var(t.clone()),
            Expr::Op(op, vec![BaseExpr::Var(n.clone()), rhs]),
        ));
    }
    stmts.push(Stmt::Return(t.clone()));
    Proc::new(name, "n", stmts)
}

struct MainGen<'a> {
    vars: Vec<Var>,
    /// Vars that are only ever used as integer scalars.
    scalars: Vec<Var>,
    /// Vars designated to hold pointers.
    pointers: Vec<Var>,
    helpers: &'a [String],
    config: &'a GenConfig,
}

fn gen_main(config: &GenConfig, helpers: &[String], rng: &mut Rng) -> Proc {
    let param = Var::new("arg");
    let total_vars = config.num_vars.max(2);
    let n_pointers = if config.pointer_ratio > 0.0 {
        (total_vars / 3).max(1)
    } else {
        0
    };
    let scalars: Vec<Var> = (0..total_vars - n_pointers)
        .map(|i| Var::new(format!("v{i}")))
        .chain(std::iter::once(param.clone()))
        .collect();
    let pointers: Vec<Var> = (0..n_pointers).map(|i| Var::new(format!("p{i}"))).collect();
    let mut vars: Vec<Var> = scalars.clone();
    vars.extend(pointers.iter().cloned());

    let gen = MainGen {
        vars,
        scalars,
        pointers,
        helpers,
        config,
    };

    let mut stmts: Vec<Stmt> = Vec::new();
    // Declarations first (the parameter is implicitly declared).
    for v in gen.vars.iter().filter(|v| **v != param) {
        stmts.push(Stmt::Decl(v.clone()));
    }
    // Initialize pointer variables so later derefs usually succeed.
    for p in &gen.pointers {
        if rng.gen_bool(0.5) {
            stmts.push(Stmt::New(p.clone()));
        } else {
            let target = pick(rng, &gen.scalars).clone();
            stmts.push(Stmt::Assign(Lhs::Var(p.clone()), Expr::AddrOf(target)));
        }
    }
    let body_start = stmts.len();
    let body_len = config.num_stmts.max(1);
    for i in 0..body_len {
        let at = body_start + i;
        let last = body_start + body_len; // index of the return statement
        stmts.push(gen.gen_stmt(rng, at, last));
    }
    stmts.push(Stmt::Return(pick(rng, &gen.scalars).clone()));
    Proc::new("main", param.as_str(), stmts)
}

impl MainGen<'_> {
    fn base(&self, rng: &mut Rng) -> BaseExpr {
        if rng.gen_bool(0.4) {
            BaseExpr::Const(small_const(rng))
        } else {
            BaseExpr::Var(pick(rng, &self.scalars).clone())
        }
    }

    fn scalar_expr(&self, rng: &mut Rng) -> Expr {
        match rng.gen_range(0..10) {
            0..=2 => Expr::Base(self.base(rng)),
            3..=4 => Expr::Base(BaseExpr::Var(pick(rng, &self.scalars).clone())),
            _ => {
                let op = *pick(
                    rng,
                    &[
                        OpKind::Add,
                        OpKind::Sub,
                        OpKind::Mul,
                        OpKind::Eq,
                        OpKind::Lt,
                    ],
                );
                Expr::Op(op, vec![self.base(rng), self.base(rng)])
            }
        }
    }

    fn gen_stmt(&self, rng: &mut Rng, at: usize, last: usize) -> Stmt {
        let roll: f64 = rng.gen_f64();
        if roll < self.config.branch_ratio && at + 2 < last {
            // Forward branch: both targets strictly beyond this index,
            // at most the return statement.
            let lo = at + 1;
            let then_target = rng.gen_range(lo..=last);
            let else_target = rng.gen_range(lo..=last);
            return Stmt::If {
                cond: self.base(rng),
                then_target,
                else_target,
            };
        }
        if roll < self.config.branch_ratio + self.config.call_ratio && !self.helpers.is_empty() {
            return Stmt::Call {
                dst: pick(rng, &self.scalars).clone(),
                proc: pick(rng, self.helpers).as_str().into(),
                arg: self.base(rng),
            };
        }
        let ptr_roll: f64 = rng.gen_f64();
        if ptr_roll < self.config.pointer_ratio && !self.pointers.is_empty() {
            let p = pick(rng, &self.pointers).clone();
            return match rng.gen_range(0..4) {
                0 => Stmt::Assign(Lhs::Deref(p), self.scalar_expr(rng)),
                1 => Stmt::Assign(Lhs::Var(pick(rng, &self.scalars).clone()), Expr::Deref(p)),
                2 => Stmt::New(p),
                _ => {
                    let target = pick(rng, &self.scalars).clone();
                    Stmt::Assign(Lhs::Var(p), Expr::AddrOf(target))
                }
            };
        }
        // Plain scalar assignment — the bread and butter.
        Stmt::Assign(
            Lhs::Var(pick(rng, &self.scalars).clone()),
            self.scalar_expr(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::validate;
    use crate::interp::{Interp, Value};

    #[test]
    fn generated_programs_validate() {
        for seed in 0..50 {
            let prog = generate(&GenConfig {
                seed,
                ..GenConfig::default()
            });
            validate(&prog).unwrap_or_else(|e| {
                panic!("seed {seed}: {e}\n{}", crate::pretty::pretty_program(&prog))
            });
        }
    }

    #[test]
    fn generated_programs_terminate() {
        for seed in 0..30 {
            let prog = generate(&GenConfig {
                seed,
                num_stmts: 40,
                ..GenConfig::default()
            });
            for arg in [-1, 0, 3] {
                match Interp::new(&prog).run(arg) {
                    Ok(Value::Int(_)) | Ok(Value::Loc(_)) => {}
                    Err(crate::error::EvalError::Stuck { .. }) => {}
                    Err(other) => panic!("seed {seed} arg {arg}: unexpected {other}"),
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenConfig::sized(30, 7));
        let b = generate(&GenConfig::sized(30, 7));
        assert_eq!(a, b);
        let c = generate(&GenConfig::sized(30, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn sized_config_scales() {
        let prog = generate(&GenConfig::sized(200, 1));
        assert!(prog.main().unwrap().len() >= 200);
    }

    #[test]
    fn most_runs_return_normally() {
        // The generator is tuned so a healthy majority of runs terminate
        // without faulting; differential testing needs that.
        let mut ok = 0;
        let mut total = 0;
        for seed in 0..40 {
            let prog = generate(&GenConfig {
                seed,
                ..GenConfig::default()
            });
            for arg in [0, 1, 5] {
                total += 1;
                if Interp::new(&prog).run(arg).is_ok() {
                    ok += 1;
                }
            }
        }
        assert!(
            ok * 2 > total,
            "only {ok}/{total} generated runs returned normally"
        );
    }
}
