//! Lexer for the textual form of the intermediate language.
//!
//! The token set is shared by the IL parser; the Cobalt DSL parser in
//! `cobalt-dsl` has its own lexer because its token set (pattern
//! variables, `=>`, keywords like `followed`) is a superset.

use crate::error::ParseError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

/// The kinds of token in IL source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// An unsigned integer literal (signs are handled by the parser).
    Int(i64),
    /// `:=`
    Assign,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `!`
    Bang,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            TokenKind::Assign => ":=",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::Star => "*",
            TokenKind::Amp => "&",
            TokenKind::AmpAmp => "&&",
            TokenKind::PipePipe => "||",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::EqEq => "==",
            TokenKind::BangEq => "!=",
            TokenKind::Bang => "!",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Eof => unreachable!(),
        }
    }
}

/// Tokenizes IL source text.
///
/// Line comments start with `//` and run to end of line.
///
/// # Errors
///
/// Returns a [`ParseError`] on unrecognized characters or malformed
/// integer literals.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;
    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                let (start_line, start_col) = (line, col);
                i += 2;
                col += 2;
                loop {
                    match (bytes.get(i), bytes.get(i + 1)) {
                        (Some('*'), Some('/')) => {
                            i += 2;
                            col += 2;
                            break;
                        }
                        (Some('\n'), _) => {
                            i += 1;
                            line += 1;
                            col = 1;
                        }
                        (Some(_), _) => {
                            i += 1;
                            col += 1;
                        }
                        (None, _) => {
                            return Err(ParseError::new(
                                start_line,
                                start_col,
                                "unterminated block comment",
                            ))
                        }
                    }
                }
            }
            ':' if next == Some('=') => push!(TokenKind::Assign, 2),
            ';' => push!(TokenKind::Semi, 1),
            ',' => push!(TokenKind::Comma, 1),
            '(' => push!(TokenKind::LParen, 1),
            ')' => push!(TokenKind::RParen, 1),
            '{' => push!(TokenKind::LBrace, 1),
            '}' => push!(TokenKind::RBrace, 1),
            '*' => push!(TokenKind::Star, 1),
            '&' if next == Some('&') => push!(TokenKind::AmpAmp, 2),
            '&' => push!(TokenKind::Amp, 1),
            '|' if next == Some('|') => push!(TokenKind::PipePipe, 2),
            '+' => push!(TokenKind::Plus, 1),
            '-' => push!(TokenKind::Minus, 1),
            '/' => push!(TokenKind::Slash, 1),
            '%' => push!(TokenKind::Percent, 1),
            '=' if next == Some('=') => push!(TokenKind::EqEq, 2),
            '!' if next == Some('=') => push!(TokenKind::BangEq, 2),
            '!' => push!(TokenKind::Bang, 1),
            '<' if next == Some('=') => push!(TokenKind::Le, 2),
            '<' => push!(TokenKind::Lt, 1),
            '>' if next == Some('=') => push!(TokenKind::Ge, 2),
            '>' => push!(TokenKind::Gt, 1),
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: i64 = text.parse().map_err(|_| {
                    ParseError::new(line, col, format!("integer literal `{text}` out of range"))
                })?;
                tokens.push(Token {
                    kind: TokenKind::Int(n),
                    line,
                    col,
                });
                col += i - start;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                    col,
                });
                col += i - start;
            }
            other => {
                return Err(ParseError::new(
                    line,
                    col,
                    format!("unrecognized character `{other}`"),
                ))
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("x := 5;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(5),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= && || :="),
            vec![
                TokenKind::EqEq,
                TokenKind::BangEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::Assign,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x // the variable\n;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn line_and_col_tracking() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn block_comments_skipped_and_tracked() {
        let toks = tokenize("/* one\ntwo */ x").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].line, 2);
        let err = tokenize("/* never closed").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_unknown_char() {
        let err = tokenize("x @ y").unwrap_err();
        assert!(err.message.contains('@'));
    }

    #[test]
    fn rejects_huge_literal() {
        let err = tokenize("99999999999999999999999").unwrap_err();
        assert!(err.message.contains("out of range"));
    }
}
