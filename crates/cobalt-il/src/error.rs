//! Error types for the intermediate language.

use std::error::Error;
use std::fmt;

/// An error produced while parsing IL source text.
///
/// # Examples
///
/// ```
/// use cobalt_il::parse_program;
/// let err = parse_program("proc main(x) {").unwrap_err();
/// assert!(err.to_string().contains("line"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub col: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given position.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl Error for ParseError {}

/// A well-formedness violation found by [`crate::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WellFormedError {
    /// The program has no `main` procedure.
    NoMain,
    /// Two procedures share a name.
    DuplicateProc(String),
    /// A procedure declares the same local twice.
    DuplicateDecl {
        /// The offending procedure.
        proc: String,
        /// The variable declared twice.
        var: String,
    },
    /// A procedure has no statements or does not end with `return`.
    MissingReturn(String),
    /// A branch target is out of range.
    BadBranchTarget {
        /// The offending procedure.
        proc: String,
        /// Index of the branch statement.
        index: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// A call names a procedure that does not exist.
    UnknownProc {
        /// The calling procedure.
        proc: String,
        /// Index of the call statement.
        index: usize,
        /// The missing callee.
        callee: String,
    },
}

impl fmt::Display for WellFormedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WellFormedError::NoMain => write!(f, "program has no main procedure"),
            WellFormedError::DuplicateProc(p) => write!(f, "duplicate procedure `{p}`"),
            WellFormedError::DuplicateDecl { proc, var } => {
                write!(f, "procedure `{proc}` declares `{var}` more than once")
            }
            WellFormedError::MissingReturn(p) => {
                write!(f, "procedure `{p}` does not end with a return statement")
            }
            WellFormedError::BadBranchTarget { proc, index, target } => write!(
                f,
                "branch at `{proc}`:{index} targets out-of-range index {target}"
            ),
            WellFormedError::UnknownProc { proc, index, callee } => {
                write!(f, "call at `{proc}`:{index} names unknown procedure `{callee}`")
            }
        }
    }
}

impl Error for WellFormedError {}

/// A reason program evaluation did not produce a result.
///
/// Run-time errors are modeled as *stuckness* in the paper (absence of a
/// transition); this type additionally distinguishes fuel exhaustion so
/// differential testing can skip nonterminating runs rather than treating
/// them as errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Execution got stuck: the paper's model of a run-time error.
    Stuck {
        /// Procedure in which the error occurred.
        proc: String,
        /// Statement index of the faulting statement.
        index: usize,
        /// Description of the fault (undeclared variable, bad deref, …).
        reason: String,
    },
    /// The step budget was exhausted (the run may be nonterminating).
    OutOfFuel,
    /// The program was ill-formed (e.g. no `main`).
    IllFormed(WellFormedError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stuck { proc, index, reason } => {
                write!(f, "stuck at `{proc}`:{index}: {reason}")
            }
            EvalError::OutOfFuel => write!(f, "step budget exhausted"),
            EvalError::IllFormed(e) => write!(f, "ill-formed program: {e}"),
        }
    }
}

impl Error for EvalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EvalError::IllFormed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WellFormedError> for EvalError {
    fn from(e: WellFormedError) -> Self {
        EvalError::IllFormed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let p = ParseError::new(3, 7, "expected `;`");
        assert_eq!(p.to_string(), "parse error at line 3:7: expected `;`");
        let w = WellFormedError::MissingReturn("f".into());
        assert!(w.to_string().contains("`f`"));
        let e = EvalError::Stuck {
            proc: "main".into(),
            index: 2,
            reason: "deref of non-pointer".into(),
        };
        assert!(e.to_string().contains("main"));
        assert!(EvalError::OutOfFuel.to_string().contains("budget"));
    }

    #[test]
    fn eval_error_source_chains() {
        use std::error::Error as _;
        let e = EvalError::from(WellFormedError::NoMain);
        assert!(e.source().is_some());
        assert!(EvalError::OutOfFuel.source().is_none());
    }
}
