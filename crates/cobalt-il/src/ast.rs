//! Abstract syntax of the Cobalt intermediate language.
//!
//! A program `π` is a sequence of procedures; each procedure is a sequence
//! of statements indexed consecutively from 0 (paper §3.1). The language is
//! untyped and C-like: unstructured control flow (`if b goto ι else ι`),
//! pointers to local variables (`&x`, `*x`), dynamic allocation
//! (`x := new`), recursive procedure calls and returns.
//!
//! All AST types are passive data structures with public fields, following
//! the C-struct spirit of the API guidelines.

use std::fmt;

/// A local variable name.
///
/// # Examples
///
/// ```
/// use cobalt_il::Var;
/// let x = Var::new("x");
/// assert_eq!(x.as_str(), "x");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(String);

impl Var {
    /// Creates a variable from a name.
    pub fn new(name: impl Into<String>) -> Self {
        Var(name.into())
    }

    /// Returns the variable's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A procedure name.
///
/// # Examples
///
/// ```
/// use cobalt_il::ProcName;
/// let p = ProcName::new("main");
/// assert_eq!(p.as_str(), "main");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcName(String);

impl ProcName {
    /// Creates a procedure name.
    pub fn new(name: impl Into<String>) -> Self {
        ProcName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ProcName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ProcName {
    fn from(s: &str) -> Self {
        ProcName::new(s)
    }
}

/// A base expression: a variable reference or an integer constant
/// (paper grammar: `b ::= x | c`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BaseExpr {
    /// A variable reference.
    Var(Var),
    /// An integer constant.
    Const(i64),
}

impl BaseExpr {
    /// Convenience constructor for a variable operand.
    pub fn var(name: impl Into<String>) -> Self {
        BaseExpr::Var(Var::new(name))
    }
}

impl fmt::Display for BaseExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseExpr::Var(v) => write!(f, "{v}"),
            BaseExpr::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<i64> for BaseExpr {
    fn from(c: i64) -> Self {
        BaseExpr::Const(c)
    }
}

impl From<Var> for BaseExpr {
    fn from(v: Var) -> Self {
        BaseExpr::Var(v)
    }
}

/// An n-ary operator over non-pointer values (paper grammar: `op`).
///
/// Applying any operator to a location value is a run-time error
/// (execution gets stuck), matching the paper's restriction of operators
/// to non-pointer values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Integer addition (arity ≥ 1; unary `+` is the identity).
    Add,
    /// Integer subtraction; unary form is negation.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division; division by zero is a run-time error.
    Div,
    /// Integer remainder; zero divisor is a run-time error.
    Mod,
    /// Equality; yields 1 or 0.
    Eq,
    /// Disequality; yields 1 or 0.
    Ne,
    /// Less-than; yields 1 or 0.
    Lt,
    /// Less-or-equal; yields 1 or 0.
    Le,
    /// Greater-than; yields 1 or 0.
    Gt,
    /// Greater-or-equal; yields 1 or 0.
    Ge,
    /// Logical conjunction over 0/nonzero truthiness; yields 1 or 0.
    And,
    /// Logical disjunction; yields 1 or 0.
    Or,
    /// Logical negation (unary); yields 1 or 0.
    Not,
}

impl OpKind {
    /// The surface-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            OpKind::Add => "+",
            OpKind::Sub => "-",
            OpKind::Mul => "*",
            OpKind::Div => "/",
            OpKind::Mod => "%",
            OpKind::Eq => "==",
            OpKind::Ne => "!=",
            OpKind::Lt => "<",
            OpKind::Le => "<=",
            OpKind::Gt => ">",
            OpKind::Ge => ">=",
            OpKind::And => "&&",
            OpKind::Or => "||",
            OpKind::Not => "!",
        }
    }

    /// All operator kinds, for exhaustive case analysis and generation.
    pub fn all() -> &'static [OpKind] {
        &[
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::Div,
            OpKind::Mod,
            OpKind::Eq,
            OpKind::Ne,
            OpKind::Lt,
            OpKind::Le,
            OpKind::Gt,
            OpKind::Ge,
            OpKind::And,
            OpKind::Or,
            OpKind::Not,
        ]
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression (paper grammar: `e ::= b | *x | &x | op b … b`).
///
/// Note that operator arguments are *base* expressions only; compound
/// expressions must be built via temporaries, as in three-address code.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// A base expression.
    Base(BaseExpr),
    /// A pointer dereference `*x`.
    Deref(Var),
    /// Taking the address of a local: `&x`.
    AddrOf(Var),
    /// An n-ary operator application `op(b, …, b)` with arity ≥ 1.
    Op(OpKind, Vec<BaseExpr>),
}

impl Expr {
    /// Convenience constructor for a variable expression.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Base(BaseExpr::var(name))
    }

    /// Convenience constructor for a constant expression.
    pub fn constant(c: i64) -> Self {
        Expr::Base(BaseExpr::Const(c))
    }

    /// Convenience constructor for a binary operator application.
    pub fn binop(op: OpKind, lhs: BaseExpr, rhs: BaseExpr) -> Self {
        Expr::Op(op, vec![lhs, rhs])
    }

    /// The variables this expression *reads* (not counting `&x`, which
    /// mentions `x` without reading its contents).
    pub fn read_vars(&self) -> Vec<&Var> {
        match self {
            Expr::Base(BaseExpr::Var(v)) | Expr::Deref(v) => vec![v],
            Expr::Base(BaseExpr::Const(_)) | Expr::AddrOf(_) => vec![],
            Expr::Op(_, args) => args
                .iter()
                .filter_map(|b| match b {
                    BaseExpr::Var(v) => Some(v),
                    BaseExpr::Const(_) => None,
                })
                .collect(),
        }
    }

    /// All variables syntactically mentioned, including in `&x`.
    pub fn mentioned_vars(&self) -> Vec<&Var> {
        match self {
            Expr::Base(BaseExpr::Var(v)) | Expr::Deref(v) | Expr::AddrOf(v) => vec![v],
            Expr::Base(BaseExpr::Const(_)) => vec![],
            Expr::Op(_, args) => args
                .iter()
                .filter_map(|b| match b {
                    BaseExpr::Var(v) => Some(v),
                    BaseExpr::Const(_) => None,
                })
                .collect(),
        }
    }

    /// Whether this expression dereferences a pointer.
    pub fn has_deref(&self) -> bool {
        matches!(self, Expr::Deref(_))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Base(b) => write!(f, "{b}"),
            Expr::Deref(v) => write!(f, "*{v}"),
            Expr::AddrOf(v) => write!(f, "&{v}"),
            Expr::Op(op, args) => match (op, args.as_slice()) {
                (_, [a, b]) => write!(f, "{a} {op} {b}"),
                (OpKind::Not, [a]) => write!(f, "!{a}"),
                (OpKind::Sub, [a]) => write!(f, "-{a}"),
                _ => {
                    write!(f, "{op}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            },
        }
    }
}

impl From<BaseExpr> for Expr {
    fn from(b: BaseExpr) -> Self {
        Expr::Base(b)
    }
}

/// An assignable location (paper grammar: `lhs ::= x | *x`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Lhs {
    /// A local variable.
    Var(Var),
    /// The location pointed to by a local: `*x`.
    Deref(Var),
}

impl Lhs {
    /// Convenience constructor for a variable left-hand side.
    pub fn var(name: impl Into<String>) -> Self {
        Lhs::Var(Var::new(name))
    }
}

impl fmt::Display for Lhs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lhs::Var(v) => write!(f, "{v}"),
            Lhs::Deref(v) => write!(f, "*{v}"),
        }
    }
}

/// A statement index within a procedure (paper: `ι`).
pub type Index = usize;

/// A statement (paper grammar: `s`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// `decl x` — declares local `x`, giving it a fresh location
    /// initialized to 0.
    Decl(Var),
    /// `skip` — no effect. Also used as the replacement form for
    /// statement removal and the source form for statement insertion.
    Skip,
    /// `lhs := e` — assignment through a variable or pointer.
    Assign(Lhs, Expr),
    /// `x := new` — heap allocation; stores a fresh location into `x`.
    New(Var),
    /// `x := p(b)` — procedure call.
    Call {
        /// Destination variable receiving the callee's return value.
        dst: Var,
        /// Callee name.
        proc: ProcName,
        /// The single actual argument.
        arg: BaseExpr,
    },
    /// `if b goto ι else ι` — conditional branch on a base expression
    /// (nonzero means true; branching on a location is a run-time error).
    If {
        /// The branch condition.
        cond: BaseExpr,
        /// Target when the condition is nonzero.
        then_target: Index,
        /// Target when the condition is zero.
        else_target: Index,
    },
    /// `return x` — returns the value of `x` to the caller.
    Return(Var),
}

impl Stmt {
    /// Convenience constructor for `x := e`.
    pub fn assign_var(name: impl Into<String>, e: Expr) -> Self {
        Stmt::Assign(Lhs::var(name), e)
    }

    /// Whether this statement is a (conditional) branch.
    pub fn is_branch(&self) -> bool {
        matches!(self, Stmt::If { .. })
    }

    /// The variables whose *contents* this statement reads.
    ///
    /// `&x` does not read `x`; `*x := e` reads `x` (the pointer) and the
    /// reads of `e`; `x := p(b)` reads `b`.
    pub fn read_vars(&self) -> Vec<&Var> {
        match self {
            Stmt::Decl(_) | Stmt::Skip | Stmt::New(_) => vec![],
            Stmt::Assign(lhs, e) => {
                let mut vs = e.read_vars();
                if let Lhs::Deref(p) = lhs {
                    vs.push(p);
                }
                vs
            }
            Stmt::Call { arg, .. } => match arg {
                BaseExpr::Var(v) => vec![v],
                BaseExpr::Const(_) => vec![],
            },
            Stmt::If { cond, .. } => match cond {
                BaseExpr::Var(v) => vec![v],
                BaseExpr::Const(_) => vec![],
            },
            Stmt::Return(v) => vec![v],
        }
    }

    /// The variable this statement *syntactically* defines, if any.
    ///
    /// A pointer store `*x := e` defines no variable syntactically (it
    /// may define any tainted variable semantically — see the `mayDef`
    /// label in `cobalt-dsl`).
    pub fn syntactic_def(&self) -> Option<&Var> {
        match self {
            Stmt::Decl(v) | Stmt::New(v) => Some(v),
            Stmt::Assign(Lhs::Var(v), _) => Some(v),
            Stmt::Call { dst, .. } => Some(dst),
            Stmt::Assign(Lhs::Deref(_), _) | Stmt::Skip | Stmt::If { .. } | Stmt::Return(_) => {
                None
            }
        }
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Decl(v) => write!(f, "decl {v}"),
            Stmt::Skip => write!(f, "skip"),
            Stmt::Assign(lhs, e) => write!(f, "{lhs} := {e}"),
            Stmt::New(v) => write!(f, "{v} := new"),
            Stmt::Call { dst, proc, arg } => write!(f, "{dst} := {proc}({arg})"),
            Stmt::If {
                cond,
                then_target,
                else_target,
            } => write!(f, "if {cond} goto {then_target} else {else_target}"),
            Stmt::Return(v) => write!(f, "return {v}"),
        }
    }
}

/// A procedure `p(x) { s; …; s; }` (paper grammar: `pr`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Proc {
    /// The procedure's name.
    pub name: ProcName,
    /// The single formal parameter.
    pub param: Var,
    /// The statement sequence; `stmts[ι]` is the statement at index `ι`.
    pub stmts: Vec<Stmt>,
}

impl Proc {
    /// Creates a procedure.
    pub fn new(name: impl Into<String>, param: impl Into<String>, stmts: Vec<Stmt>) -> Self {
        Proc {
            name: ProcName::new(name),
            param: Var::new(param),
            stmts,
        }
    }

    /// The statement at index `ι`, i.e. `stmtAt(p, ι)`.
    pub fn stmt_at(&self, index: Index) -> Option<&Stmt> {
        self.stmts.get(index)
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the procedure has no statements (always ill-formed).
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// All variables declared in or otherwise mentioned by the procedure,
    /// including the parameter, deduplicated in first-mention order.
    pub fn variables(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        let mut push = |v: &Var| {
            if !seen.contains(v) {
                seen.push(v.clone());
            }
        };
        push(&self.param);
        for s in &self.stmts {
            match s {
                Stmt::Decl(v) | Stmt::New(v) | Stmt::Return(v) => push(v),
                Stmt::Skip => {}
                Stmt::Assign(lhs, e) => {
                    match lhs {
                        Lhs::Var(v) | Lhs::Deref(v) => push(v),
                    }
                    for v in e.mentioned_vars() {
                        push(v);
                    }
                }
                Stmt::Call { dst, arg, .. } => {
                    push(dst);
                    if let BaseExpr::Var(v) = arg {
                        push(v);
                    }
                }
                Stmt::If { cond, .. } => {
                    if let BaseExpr::Var(v) = cond {
                        push(v);
                    }
                }
            }
        }
        seen
    }

    /// All integer constants appearing in the procedure, deduplicated.
    pub fn constants(&self) -> Vec<i64> {
        let mut out = Vec::new();
        let mut push = |c: i64| {
            if !out.contains(&c) {
                out.push(c);
            }
        };
        let base = |b: &BaseExpr, push: &mut dyn FnMut(i64)| {
            if let BaseExpr::Const(c) = b {
                push(*c);
            }
        };
        for s in &self.stmts {
            match s {
                Stmt::Assign(_, e) => match e {
                    Expr::Base(b) => base(b, &mut push),
                    Expr::Op(_, args) => {
                        for a in args {
                            base(a, &mut push);
                        }
                    }
                    Expr::Deref(_) | Expr::AddrOf(_) => {}
                },
                Stmt::Call { arg, .. } => base(arg, &mut push),
                Stmt::If { cond, .. } => base(cond, &mut push),
                _ => {}
            }
        }
        out
    }
}

/// A whole program: a sequence of procedures with a distinguished `main`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The procedures, in declaration order.
    pub procs: Vec<Proc>,
}

impl Program {
    /// Creates a program from its procedures.
    pub fn new(procs: Vec<Proc>) -> Self {
        Program { procs }
    }

    /// Looks up a procedure by name.
    pub fn proc(&self, name: &ProcName) -> Option<&Proc> {
        self.procs.iter().find(|p| &p.name == name)
    }

    /// Mutable lookup of a procedure by name.
    pub fn proc_mut(&mut self, name: &ProcName) -> Option<&mut Proc> {
        self.procs.iter_mut().find(|p| &p.name == name)
    }

    /// The distinguished `main` procedure, if present.
    pub fn main(&self) -> Option<&Proc> {
        self.proc(&ProcName::new("main"))
    }

    /// Returns `π[p ↦ p']`: this program with the procedure named
    /// `p'.name` replaced by `p'`.
    ///
    /// If no procedure with that name exists, the program is returned
    /// unchanged.
    pub fn with_proc_replaced(&self, replacement: Proc) -> Program {
        let mut out = self.clone();
        if let Some(slot) = out.proc_mut(&replacement.name) {
            *slot = replacement;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var::new("x")
    }

    #[test]
    fn var_display_and_eq() {
        assert_eq!(x().to_string(), "x");
        assert_eq!(Var::new("x"), Var::from("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
    }

    #[test]
    fn expr_display_forms() {
        assert_eq!(Expr::var("a").to_string(), "a");
        assert_eq!(Expr::constant(42).to_string(), "42");
        assert_eq!(Expr::Deref(x()).to_string(), "*x");
        assert_eq!(Expr::AddrOf(x()).to_string(), "&x");
        assert_eq!(
            Expr::binop(OpKind::Add, BaseExpr::var("a"), BaseExpr::Const(1)).to_string(),
            "a + 1"
        );
        assert_eq!(
            Expr::Op(OpKind::Not, vec![BaseExpr::var("a")]).to_string(),
            "!a"
        );
        assert_eq!(
            Expr::Op(
                OpKind::Add,
                vec![BaseExpr::var("a"), BaseExpr::var("b"), BaseExpr::Const(3)]
            )
            .to_string(),
            "+(a, b, 3)"
        );
    }

    #[test]
    fn stmt_display_forms() {
        assert_eq!(Stmt::Decl(x()).to_string(), "decl x");
        assert_eq!(Stmt::Skip.to_string(), "skip");
        assert_eq!(
            Stmt::Assign(Lhs::Deref(x()), Expr::constant(1)).to_string(),
            "*x := 1"
        );
        assert_eq!(Stmt::New(x()).to_string(), "x := new");
        assert_eq!(
            Stmt::Call {
                dst: x(),
                proc: ProcName::new("f"),
                arg: BaseExpr::Const(3)
            }
            .to_string(),
            "x := f(3)"
        );
        assert_eq!(
            Stmt::If {
                cond: BaseExpr::var("b"),
                then_target: 2,
                else_target: 5
            }
            .to_string(),
            "if b goto 2 else 5"
        );
        assert_eq!(Stmt::Return(x()).to_string(), "return x");
    }

    #[test]
    fn read_vars_of_pointer_store_includes_pointer() {
        let s = Stmt::Assign(Lhs::Deref(Var::new("p")), Expr::var("y"));
        let names: Vec<_> = s.read_vars().iter().map(|v| v.as_str()).collect();
        assert!(names.contains(&"p"));
        assert!(names.contains(&"y"));
    }

    #[test]
    fn addr_of_is_mentioned_but_not_read() {
        let e = Expr::AddrOf(x());
        assert!(e.read_vars().is_empty());
        assert_eq!(e.mentioned_vars(), vec![&x()]);
    }

    #[test]
    fn syntactic_def_cases() {
        assert_eq!(Stmt::Decl(x()).syntactic_def(), Some(&x()));
        assert_eq!(Stmt::New(x()).syntactic_def(), Some(&x()));
        assert_eq!(
            Stmt::assign_var("x", Expr::constant(1)).syntactic_def(),
            Some(&x())
        );
        assert_eq!(
            Stmt::Assign(Lhs::Deref(x()), Expr::constant(1)).syntactic_def(),
            None
        );
        assert_eq!(Stmt::Skip.syntactic_def(), None);
        assert_eq!(Stmt::Return(x()).syntactic_def(), None);
    }

    #[test]
    fn proc_variables_and_constants() {
        let p = Proc::new(
            "main",
            "a",
            vec![
                Stmt::Decl(Var::new("y")),
                Stmt::assign_var("y", Expr::constant(5)),
                Stmt::assign_var("z", Expr::binop(OpKind::Add, BaseExpr::var("y"), 7.into())),
                Stmt::Return(Var::new("z")),
            ],
        );
        let vars: Vec<_> = p.variables().iter().map(|v| v.to_string()).collect();
        assert_eq!(vars, ["a", "y", "z"]);
        assert_eq!(p.constants(), [5, 7]);
    }

    #[test]
    fn program_replace_proc() {
        let p1 = Proc::new("main", "a", vec![Stmt::Return(Var::new("a"))]);
        let p2 = Proc::new("main", "a", vec![Stmt::Skip, Stmt::Return(Var::new("a"))]);
        let prog = Program::new(vec![p1]);
        let prog2 = prog.with_proc_replaced(p2.clone());
        assert_eq!(prog2.main(), Some(&p2));
        assert_eq!(prog.main().map(|p| p.len()), Some(1));
    }
}
