//! Recursive-descent parser for the textual intermediate language.
//!
//! Concrete syntax (statements are `;`-separated and implicitly indexed
//! from 0 within each procedure, so branch targets are plain indices):
//!
//! ```text
//! proc main(x) {
//!     decl y;
//!     y := 5;
//!     if x goto 4 else 5;
//!     y := y + 1;
//!     return y;
//!     return x;
//! }
//! ```

use crate::ast::{BaseExpr, Expr, Lhs, OpKind, Proc, Program, Stmt, Var};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a whole program.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = cobalt_il::parse_program(
///     "proc main(x) { decl y; y := x + 1; return y; }",
/// )?;
/// assert_eq!(prog.procs.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut procs = Vec::new();
    while !p.at(&TokenKind::Eof) {
        procs.push(p.parse_proc()?);
    }
    Ok(Program::new(procs))
}

/// Parses a single statement, e.g. `"x := y + 1"`.
///
/// A trailing semicolon is optional.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let s = cobalt_il::parse_stmt("*p := 3")?;
/// assert_eq!(s.to_string(), "*p := 3");
/// # Ok(())
/// # }
/// ```
pub fn parse_stmt(src: &str) -> Result<Stmt, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let s = p.parse_stmt()?;
    let _ = p.eat(&TokenKind::Semi);
    p.expect(TokenKind::Eof)?;
    Ok(s)
}

/// Parses a single expression, e.g. `"a + b"` or `"&x"`.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError::new(t.line, t.col, message)
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {}", other.describe()))),
        }
    }

    fn expect_index(&mut self) -> Result<usize, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(n) if n >= 0 => {
                self.bump();
                Ok(n as usize)
            }
            other => Err(self.err(format!(
                "expected statement index, found {}",
                other.describe()
            ))),
        }
    }

    fn parse_proc(&mut self) -> Result<Proc, ParseError> {
        self.expect_keyword("proc")?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let param = self.expect_ident()?;
        self.expect(TokenKind::RParen)?;
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(self.err("unexpected end of input inside procedure body"));
            }
            stmts.push(self.parse_stmt()?);
            self.expect(TokenKind::Semi)?;
        }
        self.expect(TokenKind::RBrace)?;
        Ok(Proc::new(name, param, stmts))
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Star => {
                self.bump();
                let v = self.expect_ident()?;
                self.expect(TokenKind::Assign)?;
                let e = self.parse_expr()?;
                Ok(Stmt::Assign(Lhs::Deref(Var::new(v)), e))
            }
            TokenKind::Ident(word) => match word.as_str() {
                "decl" => {
                    self.bump();
                    let v = self.expect_ident()?;
                    Ok(Stmt::Decl(Var::new(v)))
                }
                "skip" => {
                    self.bump();
                    Ok(Stmt::Skip)
                }
                "return" => {
                    self.bump();
                    let v = self.expect_ident()?;
                    Ok(Stmt::Return(Var::new(v)))
                }
                "if" => {
                    self.bump();
                    let cond = self.parse_base()?;
                    self.expect_keyword("goto")?;
                    let then_target = self.expect_index()?;
                    self.expect_keyword("else")?;
                    let else_target = self.expect_index()?;
                    Ok(Stmt::If {
                        cond,
                        then_target,
                        else_target,
                    })
                }
                _ => {
                    let dst = self.expect_ident()?;
                    self.expect(TokenKind::Assign)?;
                    self.parse_assign_rhs(Var::new(dst))
                }
            },
            other => Err(self.err(format!("expected statement, found {}", other.describe()))),
        }
    }

    fn parse_assign_rhs(&mut self, dst: Var) -> Result<Stmt, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(w) if w == "new" => {
                self.bump();
                Ok(Stmt::New(dst))
            }
            // `x := p(b)` — a call, distinguished by `ident (`.
            TokenKind::Ident(_) if self.peek2() == &TokenKind::LParen => {
                let callee = self.expect_ident()?;
                self.expect(TokenKind::LParen)?;
                let arg = self.parse_base()?;
                self.expect(TokenKind::RParen)?;
                Ok(Stmt::Call {
                    dst,
                    proc: callee.as_str().into(),
                    arg,
                })
            }
            _ => {
                let e = self.parse_expr()?;
                Ok(Stmt::Assign(Lhs::Var(dst), e))
            }
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Star => {
                self.bump();
                let v = self.expect_ident()?;
                Ok(Expr::Deref(Var::new(v)))
            }
            TokenKind::Amp => {
                self.bump();
                let v = self.expect_ident()?;
                Ok(Expr::AddrOf(Var::new(v)))
            }
            TokenKind::Bang => {
                self.bump();
                let b = self.parse_base()?;
                Ok(Expr::Op(OpKind::Not, vec![b]))
            }
            _ => {
                let first = self.parse_base()?;
                if let Some(op) = self.peek_binop() {
                    self.bump();
                    let second = self.parse_base()?;
                    Ok(Expr::Op(op, vec![first, second]))
                } else {
                    Ok(Expr::Base(first))
                }
            }
        }
    }

    fn peek_binop(&self) -> Option<OpKind> {
        match self.peek().kind {
            TokenKind::Plus => Some(OpKind::Add),
            TokenKind::Minus => Some(OpKind::Sub),
            TokenKind::Star => Some(OpKind::Mul),
            TokenKind::Slash => Some(OpKind::Div),
            TokenKind::Percent => Some(OpKind::Mod),
            TokenKind::EqEq => Some(OpKind::Eq),
            TokenKind::BangEq => Some(OpKind::Ne),
            TokenKind::Lt => Some(OpKind::Lt),
            TokenKind::Le => Some(OpKind::Le),
            TokenKind::Gt => Some(OpKind::Gt),
            TokenKind::Ge => Some(OpKind::Ge),
            TokenKind::AmpAmp => Some(OpKind::And),
            TokenKind::PipePipe => Some(OpKind::Or),
            _ => None,
        }
    }

    fn parse_base(&mut self) -> Result<BaseExpr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(BaseExpr::Var(Var::new(s)))
            }
            TokenKind::Int(n) => {
                self.bump();
                Ok(BaseExpr::Const(n))
            }
            TokenKind::Minus => {
                self.bump();
                match self.peek().kind.clone() {
                    TokenKind::Int(n) => {
                        self.bump();
                        Ok(BaseExpr::Const(-n))
                    }
                    other => Err(self.err(format!(
                        "expected integer after unary `-`, found {}",
                        other.describe()
                    ))),
                }
            }
            other => Err(self.err(format!(
                "expected variable or constant, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_statement_forms() {
        let src = "
            proc main(a) {
                decl y;
                skip;
                y := 5;
                y := a + 1;
                *y := 2;
                y := *a;
                y := &a;
                y := new;
                y := helper(3);
                if a goto 0 else 10;
                return y;
            }
            proc helper(b) {
                return b;
            }
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.procs.len(), 2);
        let main = prog.main().unwrap();
        assert_eq!(main.len(), 11);
        assert!(matches!(main.stmts[0], Stmt::Decl(_)));
        assert!(matches!(main.stmts[1], Stmt::Skip));
        assert!(matches!(main.stmts[7], Stmt::New(_)));
        assert!(matches!(main.stmts[8], Stmt::Call { .. }));
        assert!(matches!(main.stmts[9], Stmt::If { .. }));
        assert!(matches!(main.stmts[10], Stmt::Return(_)));
    }

    #[test]
    fn roundtrips_via_display() {
        let cases = [
            "decl x",
            "skip",
            "x := 5",
            "x := -3",
            "x := y",
            "x := y + 1",
            "x := y == z",
            "*p := y",
            "x := *p",
            "x := &y",
            "x := new",
            "x := f(7)",
            "if c goto 2 else 3",
            "return x",
        ];
        for case in cases {
            let s = parse_stmt(case).unwrap();
            assert_eq!(s.to_string(), case, "roundtrip failed for `{case}`");
            let again = parse_stmt(&s.to_string()).unwrap();
            assert_eq!(s, again);
        }
    }

    #[test]
    fn negative_constants_in_operands() {
        let s = parse_stmt("x := y + -2").unwrap();
        assert_eq!(
            s,
            Stmt::assign_var(
                "x",
                Expr::binop(OpKind::Add, BaseExpr::var("y"), BaseExpr::Const(-2))
            )
        );
    }

    #[test]
    fn call_requires_base_argument() {
        assert!(parse_stmt("x := f(&y)").is_err());
        assert!(parse_stmt("x := f(y)").is_ok());
        assert!(parse_stmt("x := f(1)").is_ok());
    }

    #[test]
    fn operands_must_be_base_expressions() {
        // `*p + 1` is not expressible: operator args are base exprs only.
        assert!(parse_stmt("x := *p + 1").is_err());
        assert!(parse_stmt("x := &p + 1").is_err());
    }

    #[test]
    fn error_mentions_position() {
        let err = parse_program("proc main(x) { decl ; }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn missing_semicolon_is_an_error() {
        assert!(parse_program("proc main(x) { skip return x; }").is_err());
    }

    #[test]
    fn unterminated_body_is_an_error() {
        let err = parse_program("proc main(x) { skip;").unwrap_err();
        assert!(err.message.contains("end of input"));
    }

    #[test]
    fn parse_expr_entrypoint() {
        assert_eq!(parse_expr("a + b").unwrap().to_string(), "a + b");
        assert!(parse_expr("a +").is_err());
        assert!(parse_expr("a + b extra").is_err());
    }
}
