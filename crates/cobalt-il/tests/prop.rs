//! Property tests for the intermediate language: parser/pretty-printer
//! round-trips, interpreter determinism, and well-formedness of
//! generated programs.

use cobalt_il::{
    generate, parse_program, pretty_program, validate, EvalError, GenConfig, Interp,
};
use cobalt_support::prop::Config;
use cobalt_support::{prop_assert, prop_assert_eq, props};

props! {
    config = Config::with_cases(96);

    fn pretty_parse_roundtrip(seed in 0u64..10_000, size in 5usize..60) {
        let prog = generate(&GenConfig::sized(size, seed));
        let printed = pretty_program(&prog);
        let reparsed = parse_program(&printed).unwrap();
        prop_assert_eq!(&prog, &reparsed);
        // And printing is a fixed point.
        prop_assert_eq!(printed, pretty_program(&reparsed));
    }

    fn generated_programs_are_well_formed(seed in 0u64..10_000, size in 1usize..120) {
        let prog = generate(&GenConfig::sized(size, seed));
        prop_assert!(validate(&prog).is_ok());
    }

    fn interpretation_is_deterministic(seed in 0u64..5_000, arg in -10i64..10) {
        let prog = generate(&GenConfig::sized(25, seed));
        let a = Interp::new(&prog).run(arg);
        let b = Interp::new(&prog).run(arg);
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
            (Err(EvalError::Stuck { index: i, .. }), Err(EvalError::Stuck { index: j, .. })) => {
                prop_assert_eq!(i, j)
            }
            (Err(EvalError::OutOfFuel), Err(EvalError::OutOfFuel)) => {}
            (x, y) => prop_assert!(false, "nondeterministic: {x:?} vs {y:?}"),
        }
    }

    fn fuel_only_delays_the_same_answer(seed in 0u64..2_000, arg in -3i64..5) {
        // A run that completes with small fuel completes identically
        // with more fuel.
        let prog = generate(&GenConfig::sized(20, seed));
        let small = Interp::new(&prog).with_fuel(1_000).run(arg);
        if let Ok(v) = small {
            let big = Interp::new(&prog).with_fuel(1_000_000).run(arg).unwrap();
            prop_assert_eq!(v, big);
        }
    }
}
