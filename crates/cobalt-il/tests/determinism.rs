//! Regression tests for generator determinism: the same seed must
//! yield byte-identical programs — across calls, threads, and
//! configurations — with no hidden global state. Differential testing,
//! benchmark trajectories, and failing-seed reports all depend on this.

use cobalt_il::{generate, pretty_program, GenConfig};

#[test]
fn same_seed_yields_byte_identical_programs() {
    for seed in [0u64, 1, 7, 42, 0xDEAD_BEEF, u64::MAX] {
        for size in [1usize, 8, 30, 120] {
            let a = pretty_program(&generate(&GenConfig::sized(size, seed)));
            let b = pretty_program(&generate(&GenConfig::sized(size, seed)));
            assert_eq!(
                a.as_bytes(),
                b.as_bytes(),
                "seed {seed} size {size}: repeated generation diverged"
            );
        }
    }
}

#[test]
fn generation_has_no_thread_or_global_state() {
    // Interleave generations with other seeds and run on fresh threads:
    // output must depend on the config alone.
    let reference = pretty_program(&generate(&GenConfig::sized(30, 99)));
    let _noise = generate(&GenConfig::sized(10, 1));
    let again = pretty_program(&generate(&GenConfig::sized(30, 99)));
    assert_eq!(reference, again, "interleaved generation diverged");

    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| pretty_program(&generate(&GenConfig::sized(30, 99))))
        })
        .collect();
    for h in handles {
        assert_eq!(
            h.join().expect("generator thread panicked"),
            reference,
            "cross-thread generation diverged"
        );
    }
}

#[test]
fn distinct_seeds_yield_distinct_programs() {
    let outputs: Vec<String> = (0..20)
        .map(|seed| pretty_program(&generate(&GenConfig::sized(30, seed))))
        .collect();
    for i in 0..outputs.len() {
        for j in (i + 1)..outputs.len() {
            assert_ne!(outputs[i], outputs[j], "seeds {i} and {j} collided");
        }
    }
}

/// FNV-1a, so the pinned value below is independent of `std`'s
/// unstable-by-design `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

#[test]
fn generator_stream_is_pinned() {
    // Pins the exact byte stream for one seed. If this fails, the
    // generator or PRNG changed behaviour: every stored failing seed
    // and benchmark trajectory silently refers to different programs.
    // If the change is intentional, update the hash and say so in the
    // changelog.
    let text = pretty_program(&generate(&GenConfig::sized(30, 42)));
    assert_eq!(
        fnv1a(text.as_bytes()),
        0x9419_9620_5c86_903d,
        "generator output for seed 42 changed:\n{text}"
    );
}
