//! Robustness: the IL parser returns errors, never panics.

use cobalt_support::prop::{any_char, fuzz_string, Config};
use cobalt_support::props;

const VALID: &str = "proc main(x) { decl y; y := x + 1; if y goto 3 else 1; return y; }";

props! {
    config = Config::with_cases(256);

    fn random_input_never_panics(src in fuzz_string(200)) {
        let _ = cobalt_il::parse_program(&src);
        let _ = cobalt_il::parse_stmt(&src);
        let _ = cobalt_il::parse_expr(&src);
    }

    fn mutations_of_valid_input_never_panic(pos in 0usize..70, c in any_char()) {
        let mut chars: Vec<char> = VALID.chars().collect();
        if pos < chars.len() {
            chars[pos] = c;
        }
        let src: String = chars.into_iter().collect();
        let _ = cobalt_il::parse_program(&src);
    }
}
