//! Robustness: the parsers return errors, never panic, on arbitrary
//! input — including near-miss mutations of valid sources.

use cobalt_support::prop::{any_char, fuzz_string, Config};
use cobalt_support::props;

const VALID: &str = "forward const_prop {
    stmt(Y := C)
    followed by !mayDef(Y)
    until X := Y => X := C
    with witness eta(Y) == C
}";

props! {
    config = Config::with_cases(256);

    fn random_input_never_panics(src in fuzz_string(200)) {
        let _ = cobalt_dsl::parse_optimization(&src);
        let _ = cobalt_dsl::parse_suite(&src);
    }

    fn truncations_of_valid_input_never_panic(cut in 0usize..200) {
        let src: String = VALID.chars().take(cut).collect();
        let _ = cobalt_dsl::parse_optimization(&src);
    }

    fn single_char_mutations_never_panic(pos in 0usize..150, c in any_char()) {
        let mut chars: Vec<char> = VALID.chars().collect();
        if pos < chars.len() {
            chars[pos] = c;
        }
        let src: String = chars.into_iter().collect();
        let _ = cobalt_dsl::parse_optimization(&src);
    }
}
