//! The *extended intermediate language*: IL syntax augmented with
//! pattern variables and wildcards (paper §3.2.1), plus matching against
//! concrete fragments and instantiation under a substitution.

use crate::error::InstError;
use crate::subst::{Binding, PatVar, Subst};
use cobalt_il::{eval_op, BaseExpr, Expr, Index, Lhs, OpKind, ProcName, Stmt, Var};
use std::fmt;

/// A variable position: concrete or a pattern variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VarPat {
    /// A concrete program variable.
    Concrete(Var),
    /// A pattern variable ranging over program variables.
    Pat(PatVar),
}

impl VarPat {
    /// Shorthand for a pattern variable.
    pub fn pat(name: &str) -> Self {
        VarPat::Pat(PatVar::new(name))
    }

    /// Matches against a concrete variable, extending `theta`.
    pub fn matches(&self, v: &Var, theta: &mut Subst) -> bool {
        match self {
            VarPat::Concrete(w) => w == v,
            VarPat::Pat(p) => theta.bind(p.clone(), Binding::Var(v.clone())),
        }
    }

    /// Instantiates under `theta`.
    ///
    /// # Errors
    ///
    /// Fails if a pattern variable is unbound or bound to a non-variable.
    pub fn instantiate(&self, theta: &Subst) -> Result<Var, InstError> {
        match self {
            VarPat::Concrete(v) => Ok(v.clone()),
            VarPat::Pat(p) => match theta.get(p) {
                Some(Binding::Var(v)) => Ok(v.clone()),
                Some(other) => Err(InstError::kind_mismatch(p, "variable", other)),
                None => Err(InstError::unbound(p)),
            },
        }
    }
}

impl fmt::Display for VarPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarPat::Concrete(v) => write!(f, "{v}"),
            VarPat::Pat(p) => write!(f, "{p}"),
        }
    }
}

/// A constant position: concrete or a pattern variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConstPat {
    /// A concrete integer constant.
    Concrete(i64),
    /// A pattern variable ranging over constants.
    Pat(PatVar),
}

impl ConstPat {
    /// Shorthand for a pattern variable.
    pub fn pat(name: &str) -> Self {
        ConstPat::Pat(PatVar::new(name))
    }

    /// Matches against a concrete constant, extending `theta`.
    pub fn matches(&self, c: i64, theta: &mut Subst) -> bool {
        match self {
            ConstPat::Concrete(d) => *d == c,
            ConstPat::Pat(p) => theta.bind(p.clone(), Binding::Const(c)),
        }
    }

    /// Instantiates under `theta`.
    ///
    /// # Errors
    ///
    /// Fails if a pattern variable is unbound or bound to a non-constant.
    pub fn instantiate(&self, theta: &Subst) -> Result<i64, InstError> {
        match self {
            ConstPat::Concrete(c) => Ok(*c),
            ConstPat::Pat(p) => match theta.get(p) {
                Some(Binding::Const(c)) => Ok(*c),
                Some(other) => Err(InstError::kind_mismatch(p, "constant", other)),
                None => Err(InstError::unbound(p)),
            },
        }
    }
}

impl fmt::Display for ConstPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstPat::Concrete(c) => write!(f, "{c}"),
            ConstPat::Pat(p) => write!(f, "{p}"),
        }
    }
}

/// A base-expression position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BasePat {
    /// A variable.
    Var(VarPat),
    /// A constant.
    Const(ConstPat),
}

impl BasePat {
    /// Matches against a concrete base expression.
    pub fn matches(&self, b: &BaseExpr, theta: &mut Subst) -> bool {
        match (self, b) {
            (BasePat::Var(vp), BaseExpr::Var(v)) => vp.matches(v, theta),
            (BasePat::Const(cp), BaseExpr::Const(c)) => cp.matches(*c, theta),
            _ => false,
        }
    }

    /// Instantiates under `theta`.
    ///
    /// # Errors
    ///
    /// Propagates unbound/mismatched pattern variables.
    pub fn instantiate(&self, theta: &Subst) -> Result<BaseExpr, InstError> {
        match self {
            BasePat::Var(vp) => Ok(BaseExpr::Var(vp.instantiate(theta)?)),
            BasePat::Const(cp) => Ok(BaseExpr::Const(cp.instantiate(theta)?)),
        }
    }
}

impl fmt::Display for BasePat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasePat::Var(v) => write!(f, "{v}"),
            BasePat::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An expression position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ExprPat {
    /// A pattern variable ranging over whole expressions (`E`).
    Pat(PatVar),
    /// A wildcard: matches any expression, binding nothing (`…`).
    Any,
    /// A base expression.
    Base(BasePat),
    /// `*x`.
    Deref(VarPat),
    /// `&x`.
    AddrOf(VarPat),
    /// `op b … b`.
    Op(OpKind, Vec<BasePat>),
    /// The compile-time constant fold of the expression bound to the
    /// inner pattern. Only meaningful on the right-hand side of a
    /// rewrite (used by constant folding); instantiation fails if the
    /// bound expression is not a foldable operator application.
    Fold(PatVar),
}

impl ExprPat {
    /// Matches against a concrete expression.
    pub fn matches(&self, e: &Expr, theta: &mut Subst) -> bool {
        match (self, e) {
            (ExprPat::Pat(p), e) => theta.bind(p.clone(), Binding::Expr(e.clone())),
            (ExprPat::Any, _) => true,
            (ExprPat::Base(bp), Expr::Base(b)) => bp.matches(b, theta),
            (ExprPat::Deref(vp), Expr::Deref(v)) => vp.matches(v, theta),
            (ExprPat::AddrOf(vp), Expr::AddrOf(v)) => vp.matches(v, theta),
            (ExprPat::Op(op, ps), Expr::Op(op2, bs)) => {
                op == op2
                    && ps.len() == bs.len()
                    && ps.iter().zip(bs).all(|(p, b)| p.matches(b, theta))
            }
            (ExprPat::Fold(_), _) => false,
            _ => false,
        }
    }

    /// Instantiates under `theta`.
    ///
    /// # Errors
    ///
    /// Propagates unbound/mismatched pattern variables; for
    /// [`ExprPat::Fold`], fails if the bound expression does not fold to
    /// a constant.
    pub fn instantiate(&self, theta: &Subst) -> Result<Expr, InstError> {
        match self {
            ExprPat::Pat(p) => match theta.get(p) {
                Some(Binding::Expr(e)) => Ok(e.clone()),
                Some(other) => Err(InstError::kind_mismatch(p, "expression", other)),
                None => Err(InstError::unbound(p)),
            },
            ExprPat::Any => Err(InstError::wildcard_in_template()),
            ExprPat::Base(bp) => Ok(Expr::Base(bp.instantiate(theta)?)),
            ExprPat::Deref(vp) => Ok(Expr::Deref(vp.instantiate(theta)?)),
            ExprPat::AddrOf(vp) => Ok(Expr::AddrOf(vp.instantiate(theta)?)),
            ExprPat::Op(op, ps) => {
                let args = ps
                    .iter()
                    .map(|p| p.instantiate(theta))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Expr::Op(*op, args))
            }
            ExprPat::Fold(p) => {
                let e = match theta.get(p) {
                    Some(Binding::Expr(e)) => e.clone(),
                    Some(other) => return Err(InstError::kind_mismatch(p, "expression", other)),
                    None => return Err(InstError::unbound(p)),
                };
                fold_expr(&e)
                    .map(Expr::constant)
                    .ok_or_else(|| InstError::not_foldable(p, &e))
            }
        }
    }
}

/// Constant-folds an expression if it is a constant or an operator
/// application over constants that evaluates without fault.
pub fn fold_expr(e: &Expr) -> Option<i64> {
    match e {
        Expr::Base(BaseExpr::Const(c)) => Some(*c),
        Expr::Op(op, args) => {
            let ints: Option<Vec<i64>> = args
                .iter()
                .map(|b| match b {
                    BaseExpr::Const(c) => Some(*c),
                    BaseExpr::Var(_) => None,
                })
                .collect();
            eval_op(*op, &ints?)
        }
        _ => None,
    }
}

impl fmt::Display for ExprPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprPat::Pat(p) => write!(f, "{p}"),
            ExprPat::Any => write!(f, "..."),
            ExprPat::Base(b) => write!(f, "{b}"),
            ExprPat::Deref(v) => write!(f, "*{v}"),
            ExprPat::AddrOf(v) => write!(f, "&{v}"),
            ExprPat::Op(op, args) => match args.as_slice() {
                [a, b] => write!(f, "{a} {op} {b}"),
                [a] => write!(f, "{op}{a}"),
                _ => {
                    write!(f, "{op}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            },
            ExprPat::Fold(p) => write!(f, "fold({p})"),
        }
    }
}

/// A left-hand-side position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LhsPat {
    /// A variable.
    Var(VarPat),
    /// `*x`.
    Deref(VarPat),
    /// A wildcard matching any left-hand side (`…`).
    Any,
}

impl LhsPat {
    /// Matches against a concrete left-hand side.
    pub fn matches(&self, lhs: &Lhs, theta: &mut Subst) -> bool {
        match (self, lhs) {
            (LhsPat::Var(vp), Lhs::Var(v)) => vp.matches(v, theta),
            (LhsPat::Deref(vp), Lhs::Deref(v)) => vp.matches(v, theta),
            (LhsPat::Any, _) => true,
            _ => false,
        }
    }

    /// Instantiates under `theta`.
    ///
    /// # Errors
    ///
    /// Propagates unbound/mismatched pattern variables; wildcards cannot
    /// be instantiated.
    pub fn instantiate(&self, theta: &Subst) -> Result<Lhs, InstError> {
        match self {
            LhsPat::Var(vp) => Ok(Lhs::Var(vp.instantiate(theta)?)),
            LhsPat::Deref(vp) => Ok(Lhs::Deref(vp.instantiate(theta)?)),
            LhsPat::Any => Err(InstError::wildcard_in_template()),
        }
    }
}

impl fmt::Display for LhsPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LhsPat::Var(v) => write!(f, "{v}"),
            LhsPat::Deref(v) => write!(f, "*{v}"),
            LhsPat::Any => write!(f, "..."),
        }
    }
}

/// A branch-target position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IdxPat {
    /// A concrete statement index.
    Concrete(Index),
    /// A pattern variable ranging over indices.
    Pat(PatVar),
}

impl IdxPat {
    /// Shorthand for a pattern variable.
    pub fn pat(name: &str) -> Self {
        IdxPat::Pat(PatVar::new(name))
    }

    /// Matches against a concrete index.
    pub fn matches(&self, i: Index, theta: &mut Subst) -> bool {
        match self {
            IdxPat::Concrete(j) => *j == i,
            IdxPat::Pat(p) => theta.bind(p.clone(), Binding::Index(i)),
        }
    }

    /// Instantiates under `theta`.
    ///
    /// # Errors
    ///
    /// Propagates unbound/mismatched pattern variables.
    pub fn instantiate(&self, theta: &Subst) -> Result<Index, InstError> {
        match self {
            IdxPat::Concrete(i) => Ok(*i),
            IdxPat::Pat(p) => match theta.get(p) {
                Some(Binding::Index(i)) => Ok(*i),
                Some(other) => Err(InstError::kind_mismatch(p, "index", other)),
                None => Err(InstError::unbound(p)),
            },
        }
    }
}

impl fmt::Display for IdxPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdxPat::Concrete(i) => write!(f, "{i}"),
            IdxPat::Pat(p) => write!(f, "{p}"),
        }
    }
}

/// A procedure-name position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProcPat {
    /// A concrete procedure name.
    Concrete(ProcName),
    /// A pattern variable ranging over procedure names.
    Pat(PatVar),
}

impl ProcPat {
    /// Matches against a concrete procedure name.
    pub fn matches(&self, p: &ProcName, theta: &mut Subst) -> bool {
        match self {
            ProcPat::Concrete(q) => q == p,
            ProcPat::Pat(v) => theta.bind(v.clone(), Binding::Proc(p.clone())),
        }
    }

    /// Instantiates under `theta`.
    ///
    /// # Errors
    ///
    /// Propagates unbound/mismatched pattern variables.
    pub fn instantiate(&self, theta: &Subst) -> Result<ProcName, InstError> {
        match self {
            ProcPat::Concrete(p) => Ok(p.clone()),
            ProcPat::Pat(v) => match theta.get(v) {
                Some(Binding::Proc(p)) => Ok(p.clone()),
                Some(other) => Err(InstError::kind_mismatch(v, "procedure", other)),
                None => Err(InstError::unbound(v)),
            },
        }
    }
}

impl fmt::Display for ProcPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProcPat::Concrete(p) => write!(f, "{p}"),
            ProcPat::Pat(v) => write!(f, "{v}"),
        }
    }
}

/// A statement pattern of the extended intermediate language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StmtPat {
    /// Matches any statement, binding nothing.
    Any,
    /// `decl x`.
    Decl(VarPat),
    /// `skip`.
    Skip,
    /// `lhs := e`.
    Assign(LhsPat, ExprPat),
    /// `x := new`.
    New(VarPat),
    /// `x := p(b)`.
    Call {
        /// Destination variable.
        dst: VarPat,
        /// Callee.
        proc: ProcPat,
        /// Argument.
        arg: BasePat,
    },
    /// `if b goto ι else ι`.
    If {
        /// Condition.
        cond: BasePat,
        /// Then target.
        then_target: IdxPat,
        /// Else target.
        else_target: IdxPat,
    },
    /// `return x`.
    Return(VarPat),
    /// `return ...` — any return statement.
    ReturnAny,
}

impl StmtPat {
    /// Shorthand: `X := E` with both sides pattern variables.
    pub fn assign_pats(x: &str, e: &str) -> Self {
        StmtPat::Assign(LhsPat::Var(VarPat::pat(x)), ExprPat::Pat(PatVar::new(e)))
    }

    /// Matches against a concrete statement under `theta`, extending
    /// `theta` with new bindings on success. On failure `theta` may be
    /// partially extended; callers should clone first (see
    /// [`StmtPat::try_match`]).
    pub fn matches(&self, s: &Stmt, theta: &mut Subst) -> bool {
        match (self, s) {
            (StmtPat::Any, _) => true,
            (StmtPat::Decl(vp), Stmt::Decl(v)) => vp.matches(v, theta),
            (StmtPat::Skip, Stmt::Skip) => true,
            (StmtPat::Assign(lp, ep), Stmt::Assign(lhs, e)) => {
                lp.matches(lhs, theta) && ep.matches(e, theta)
            }
            (StmtPat::New(vp), Stmt::New(v)) => vp.matches(v, theta),
            (
                StmtPat::Call { dst, proc, arg },
                Stmt::Call {
                    dst: d,
                    proc: p,
                    arg: a,
                },
            ) => dst.matches(d, theta) && proc.matches(p, theta) && arg.matches(a, theta),
            (
                StmtPat::If {
                    cond,
                    then_target,
                    else_target,
                },
                Stmt::If {
                    cond: c,
                    then_target: t,
                    else_target: e,
                },
            ) => cond.matches(c, theta) && then_target.matches(*t, theta) && else_target.matches(*e, theta),
            (StmtPat::Return(vp), Stmt::Return(v)) => vp.matches(v, theta),
            (StmtPat::ReturnAny, Stmt::Return(_)) => true,
            _ => false,
        }
    }

    /// Matches against a statement, returning the extended substitution
    /// on success and leaving `theta` untouched on failure.
    pub fn try_match(&self, s: &Stmt, theta: &Subst) -> Option<Subst> {
        let mut t = theta.clone();
        if self.matches(s, &mut t) {
            Some(t)
        } else {
            None
        }
    }

    /// Instantiates the pattern into a concrete statement — `θ(s)`.
    ///
    /// # Errors
    ///
    /// Fails if any pattern variable is unbound or bound to a fragment
    /// of the wrong kind, or if the pattern contains wildcards.
    pub fn instantiate(&self, theta: &Subst) -> Result<Stmt, InstError> {
        match self {
            StmtPat::Any | StmtPat::ReturnAny => Err(InstError::wildcard_in_template()),
            StmtPat::Decl(vp) => Ok(Stmt::Decl(vp.instantiate(theta)?)),
            StmtPat::Skip => Ok(Stmt::Skip),
            StmtPat::Assign(lp, ep) => {
                Ok(Stmt::Assign(lp.instantiate(theta)?, ep.instantiate(theta)?))
            }
            StmtPat::New(vp) => Ok(Stmt::New(vp.instantiate(theta)?)),
            StmtPat::Call { dst, proc, arg } => Ok(Stmt::Call {
                dst: dst.instantiate(theta)?,
                proc: proc.instantiate(theta)?,
                arg: arg.instantiate(theta)?,
            }),
            StmtPat::If {
                cond,
                then_target,
                else_target,
            } => Ok(Stmt::If {
                cond: cond.instantiate(theta)?,
                then_target: then_target.instantiate(theta)?,
                else_target: else_target.instantiate(theta)?,
            }),
            StmtPat::Return(vp) => Ok(Stmt::Return(vp.instantiate(theta)?)),
        }
    }
}

impl fmt::Display for StmtPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StmtPat::Any => write!(f, "..."),
            StmtPat::Decl(v) => write!(f, "decl {v}"),
            StmtPat::Skip => write!(f, "skip"),
            StmtPat::Assign(l, e) => write!(f, "{l} := {e}"),
            StmtPat::New(v) => write!(f, "{v} := new"),
            StmtPat::Call { dst, proc, arg } => write!(f, "{dst} := {proc}({arg})"),
            StmtPat::If {
                cond,
                then_target,
                else_target,
            } => write!(f, "if {cond} goto {then_target} else {else_target}"),
            StmtPat::Return(v) => write!(f, "return {v}"),
            StmtPat::ReturnAny => write!(f, "return ..."),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_il::parse_stmt;

    fn assign_y_c() -> StmtPat {
        // stmt pattern `Y := C` from the constant-propagation example.
        StmtPat::Assign(
            LhsPat::Var(VarPat::pat("Y")),
            ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
        )
    }

    #[test]
    fn matches_paper_example_1() {
        let s = parse_stmt("a := 2").unwrap();
        let theta = assign_y_c().try_match(&s, &Subst::new()).unwrap();
        assert_eq!(theta.to_string(), "[C ↦ 2, Y ↦ a]");
    }

    #[test]
    fn const_pattern_rejects_variable_rhs() {
        let s = parse_stmt("a := b").unwrap();
        assert!(assign_y_c().try_match(&s, &Subst::new()).is_none());
    }

    #[test]
    fn repeated_pattern_variable_must_agree() {
        // X := X matches self-assignments only.
        let p = StmtPat::Assign(
            LhsPat::Var(VarPat::pat("X")),
            ExprPat::Base(BasePat::Var(VarPat::pat("X"))),
        );
        assert!(p
            .try_match(&parse_stmt("a := a").unwrap(), &Subst::new())
            .is_some());
        assert!(p
            .try_match(&parse_stmt("a := b").unwrap(), &Subst::new())
            .is_none());
    }

    #[test]
    fn expr_pattern_variable_matches_any_rhs() {
        let p = StmtPat::assign_pats("X", "E");
        for src in ["a := 2", "a := b + 1", "a := *p", "a := &b"] {
            let s = parse_stmt(src).unwrap();
            assert!(p.try_match(&s, &Subst::new()).is_some(), "{src}");
        }
        // But not non-assignments.
        assert!(p
            .try_match(&parse_stmt("a := new").unwrap(), &Subst::new())
            .is_none());
        assert!(p
            .try_match(&parse_stmt("skip").unwrap(), &Subst::new())
            .is_none());
        // And not pointer stores.
        assert!(p
            .try_match(&parse_stmt("*a := 1").unwrap(), &Subst::new())
            .is_none());
    }

    #[test]
    fn wildcard_lhs_matches_pointer_store() {
        // `... := &X` — the notTainted analysis guard.
        let p = StmtPat::Assign(LhsPat::Any, ExprPat::AddrOf(VarPat::pat("X")));
        let theta = p
            .try_match(&parse_stmt("q := &y").unwrap(), &Subst::new())
            .unwrap();
        assert_eq!(theta.to_string(), "[X ↦ y]");
        assert!(p
            .try_match(&parse_stmt("*q := &y").unwrap(), &Subst::new())
            .is_some());
        assert!(p
            .try_match(&parse_stmt("q := y").unwrap(), &Subst::new())
            .is_none());
    }

    #[test]
    fn return_any_matches_all_returns() {
        assert!(StmtPat::ReturnAny
            .try_match(&parse_stmt("return x").unwrap(), &Subst::new())
            .is_some());
        assert!(StmtPat::ReturnAny
            .try_match(&parse_stmt("skip").unwrap(), &Subst::new())
            .is_none());
    }

    #[test]
    fn instantiation_roundtrip() {
        let s = parse_stmt("a := 2").unwrap();
        let theta = assign_y_c().try_match(&s, &Subst::new()).unwrap();
        assert_eq!(assign_y_c().instantiate(&theta).unwrap(), s);
    }

    #[test]
    fn instantiation_of_rewrite_rhs() {
        // From `X := Y` matched against `c := a`, with `C ↦ 2` from an
        // earlier enabling statement, build `c := 2`.
        let lhs = StmtPat::Assign(
            LhsPat::Var(VarPat::pat("X")),
            ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
        );
        let rhs = StmtPat::Assign(
            LhsPat::Var(VarPat::pat("X")),
            ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
        );
        let mut theta = Subst::new();
        theta.bind("C".into(), Binding::Const(2));
        let theta = lhs
            .try_match(&parse_stmt("c := a").unwrap(), &theta)
            .unwrap();
        assert_eq!(
            rhs.instantiate(&theta).unwrap(),
            parse_stmt("c := 2").unwrap()
        );
    }

    #[test]
    fn instantiation_errors() {
        let p = StmtPat::assign_pats("X", "E");
        let err = p.instantiate(&Subst::new()).unwrap_err();
        assert!(err.to_string().contains("unbound"));

        let mut theta = Subst::new();
        theta.bind("X".into(), Binding::Const(1)); // wrong kind
        theta.bind("E".into(), Binding::Expr(Expr::constant(1)));
        let err = p.instantiate(&theta).unwrap_err();
        assert!(err.to_string().contains("variable"));

        assert!(StmtPat::Any.instantiate(&Subst::new()).is_err());
    }

    #[test]
    fn fold_instantiation() {
        let rhs = StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Fold("E".into()));
        let mut theta = Subst::new();
        theta.bind("X".into(), Binding::Var(Var::new("x")));
        theta.bind(
            "E".into(),
            Binding::Expr(Expr::binop(OpKind::Add, BaseExpr::Const(2), BaseExpr::Const(3))),
        );
        assert_eq!(
            rhs.instantiate(&theta).unwrap(),
            parse_stmt("x := 5").unwrap()
        );
        // Division by zero does not fold.
        let mut theta2 = Subst::new();
        theta2.bind("X".into(), Binding::Var(Var::new("x")));
        theta2.bind(
            "E".into(),
            Binding::Expr(Expr::binop(OpKind::Div, BaseExpr::Const(1), BaseExpr::Const(0))),
        );
        assert!(rhs.instantiate(&theta2).is_err());
    }

    #[test]
    fn fold_expr_table() {
        assert_eq!(fold_expr(&Expr::constant(4)), Some(4));
        assert_eq!(
            fold_expr(&Expr::binop(OpKind::Mul, BaseExpr::Const(6), BaseExpr::Const(7))),
            Some(42)
        );
        assert_eq!(
            fold_expr(&Expr::binop(OpKind::Add, BaseExpr::var("a"), BaseExpr::Const(1))),
            None
        );
        assert_eq!(fold_expr(&Expr::var("a")), None);
        assert_eq!(fold_expr(&Expr::Deref(Var::new("p"))), None);
    }

    #[test]
    fn if_pattern_with_index_patterns() {
        let p = StmtPat::If {
            cond: BasePat::Const(ConstPat::pat("C")),
            then_target: IdxPat::pat("I1"),
            else_target: IdxPat::pat("I2"),
        };
        let s = parse_stmt("if 1 goto 4 else 7").unwrap();
        let theta = p.try_match(&s, &Subst::new()).unwrap();
        assert_eq!(theta.to_string(), "[C ↦ 1, I1 ↦ 4, I2 ↦ 7]");
        // A variable condition does not match a constant pattern.
        assert!(p
            .try_match(&parse_stmt("if x goto 4 else 7").unwrap(), &Subst::new())
            .is_none());
    }

    #[test]
    fn display_of_patterns() {
        assert_eq!(assign_y_c().to_string(), "Y := C");
        assert_eq!(StmtPat::assign_pats("X", "E").to_string(), "X := E");
        assert_eq!(
            StmtPat::Assign(LhsPat::Any, ExprPat::AddrOf(VarPat::pat("X"))).to_string(),
            "... := &X"
        );
        assert_eq!(StmtPat::ReturnAny.to_string(), "return ...");
    }
}
