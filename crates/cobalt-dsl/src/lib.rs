//! # cobalt-dsl
//!
//! The Cobalt domain-specific language for compiler optimizations, from
//! *Lerner, Millstein & Chambers, "Automatically Proving the Correctness
//! of Compiler Optimizations" (PLDI 2003)*.
//!
//! An optimization is written as a guarded rewrite rule:
//!
//! ```text
//! ψ1 followed by ψ2 until s ⇒ s' with witness P filtered through choose
//! ```
//!
//! This crate provides the language's syntax and static semantics:
//!
//! * [pattern terms](pattern) — the *extended intermediate language*
//!   with pattern variables and wildcards, with matching and
//!   instantiation;
//! * [substitutions](Subst) `θ`, which double as the execution engine's
//!   dataflow facts;
//! * the [guard language](Guard) `ψ` with user-definable
//!   [labels](LabelEnv) and `case` pattern matching;
//! * [witnesses](witness) — the invariants that justify soundness;
//! * [`Optimization`] / [`PureAnalysis`] definitions with
//!   [profitability heuristics](Choose);
//! * a [text parser](parser) for Cobalt's surface syntax.
//!
//! The execution engine lives in `cobalt-engine`; the soundness checker
//! in `cobalt-verify`.
//!
//! # Examples
//!
//! The constant-propagation pattern of the paper's Example 1, matched
//! against an enabling statement:
//!
//! ```
//! use cobalt_dsl::{ConstPat, BasePat, ExprPat, LhsPat, StmtPat, Subst, VarPat};
//! use cobalt_il::parse_stmt;
//!
//! // stmt(Y := C)
//! let enabling = StmtPat::Assign(
//!     LhsPat::Var(VarPat::pat("Y")),
//!     ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
//! );
//! let theta = enabling
//!     .try_match(&parse_stmt("a := 2").unwrap(), &Subst::new())
//!     .unwrap();
//! assert_eq!(theta.to_string(), "[C ↦ 2, Y ↦ a]");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod guard;
pub mod label;
pub mod opt;
pub mod parser;
pub mod pattern;
pub mod stdlib;
pub mod subst;
pub mod witness;

pub use error::{DslParseError, GuardError, InstError};
pub use guard::{Domain, Guard, NodeCtx};
pub use label::{FragKind, LabelArg, LabelArgPat, LabelDef, LabelEnv, LabelInst, LabelName, LabelSet};
pub use parser::{parse_analysis, parse_optimization, parse_suite, Suite};
pub use opt::{
    Choose, Direction, GuardSpec, MatchSite, Optimization, PureAnalysis, RegionGuard,
    TransformPattern, Witness,
};
pub use pattern::{
    fold_expr, BasePat, ConstPat, ExprPat, IdxPat, LhsPat, ProcPat, StmtPat, VarPat,
};
pub use subst::{Binding, PatVar, Subst};
pub use witness::{BackwardWitness, ForwardWitness};
