//! Optimizations and pure analyses (paper §2.1, §2.2, §2.3, §2.4).
//!
//! An optimization is a *transformation pattern* — a guarded rewrite
//! rule with a witness — `filtered through` a *profitability heuristic*
//! (`choose`). Only the transformation pattern affects soundness; the
//! heuristic may be arbitrary code.

use crate::guard::Guard;
use crate::label::{LabelName, LabelArgPat};
use crate::pattern::StmtPat;
use crate::subst::Subst;
use crate::witness::{BackwardWitness, ForwardWitness};
use cobalt_il::{Index, Proc};
use std::fmt;
use std::sync::Arc;

/// The direction of a dataflow optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `ψ1 followed by ψ2 until s ⇒ s'`.
    Forward,
    /// `ψ1 preceded by ψ2 since s ⇒ s'`.
    Backward,
}

/// A guard of the shape `ψ1 followed by ψ2` / `ψ1 preceded by ψ2`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionGuard {
    /// The enabling condition `ψ1`.
    pub psi1: Guard,
    /// The innocuous condition `ψ2`.
    pub psi2: Guard,
}

/// How a transformation pattern is guarded.
#[derive(Debug, Clone, PartialEq)]
pub enum GuardSpec {
    /// A witnessing-region guard, as in the paper.
    Region(RegionGuard),
    /// A node-local rewrite with no witnessing region: the rewrite is
    /// justified by the matched statement alone (plus the `where`
    /// condition). Used by constant folding, branch folding, and
    /// self-assignment removal. This is a documented extension of the
    /// paper's syntax; its obligations are F3-only.
    Local,
}

/// The witness accompanying a transformation pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum Witness {
    /// A forward witness over `η`.
    Forward(ForwardWitness),
    /// A backward witness over `(η_old, η_new)`.
    Backward(BackwardWitness),
}

/// A transformation pattern
/// `ψ1 followed by ψ2 until s ⇒ s' where ψ0 with witness P`.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformPattern {
    /// Forward or backward.
    pub direction: Direction,
    /// The region guard (or `Local` for node-local rewrites).
    pub guard: GuardSpec,
    /// The statement pattern `s` to transform.
    pub from: StmtPat,
    /// The replacement template `s'`.
    pub to: StmtPat,
    /// An additional node-local condition on the transformed node
    /// (`Guard::True` if absent).
    pub where_clause: Guard,
    /// The witness `P`.
    pub witness: Witness,
}

/// A legal transformation instance: the node to rewrite and the
/// substitution under which the pattern matched.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MatchSite {
    /// The CFG node index `ι`.
    pub index: Index,
    /// The substitution `θ`.
    pub subst: Subst,
}

impl fmt::Display for MatchSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.subst, self.index)
    }
}

/// The type of a profitability-heuristic function.
pub type ChooseFn = dyn Fn(&[MatchSite], &Proc) -> Vec<MatchSite> + Send + Sync;

/// A profitability heuristic: given the legal transformations `Δ` and
/// the procedure, selects the subset to perform (paper §2.3).
#[derive(Clone)]
pub enum Choose {
    /// `choose_all`: perform every legal transformation (the default).
    All,
    /// An arbitrary user function. It may be written "in a language of
    /// the user's choice" — here, any Rust closure. Its output is
    /// intersected with `Δ` (paper Definition 2), so a buggy heuristic
    /// can never break soundness.
    Fn(Arc<ChooseFn>),
}

impl Choose {
    /// Applies the heuristic. The result is always a subset of `delta`.
    pub fn select(&self, delta: &[MatchSite], proc: &Proc) -> Vec<MatchSite> {
        match self {
            Choose::All => delta.to_vec(),
            Choose::Fn(f) => {
                let chosen = f(delta, proc);
                chosen
                    .into_iter()
                    .filter(|m| delta.contains(m))
                    .collect()
            }
        }
    }
}

impl fmt::Debug for Choose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Choose::All => write!(f, "Choose::All"),
            Choose::Fn(_) => write!(f, "Choose::Fn(..)"),
        }
    }
}

/// A complete optimization: a transformation pattern filtered through a
/// profitability heuristic.
#[derive(Debug, Clone)]
pub struct Optimization {
    /// A human-readable name, e.g. `"const_prop"`.
    pub name: String,
    /// The soundness-relevant part.
    pub pattern: TransformPattern,
    /// The profitability heuristic.
    pub choose: Choose,
}

impl Optimization {
    /// Creates an optimization with the default `choose_all` heuristic.
    pub fn new(name: impl Into<String>, pattern: TransformPattern) -> Self {
        Optimization {
            name: name.into(),
            pattern,
            choose: Choose::All,
        }
    }

    /// Replaces the profitability heuristic.
    pub fn with_choose(
        mut self,
        f: impl Fn(&[MatchSite], &Proc) -> Vec<MatchSite> + Send + Sync + 'static,
    ) -> Self {
        self.choose = Choose::Fn(Arc::new(f));
        self
    }
}

/// A pure analysis `ψ1 followed by ψ2 defines label with witness P`
/// (paper §2.4). Pure analyses are forward-only.
#[derive(Debug, Clone)]
pub struct PureAnalysis {
    /// A human-readable name.
    pub name: String,
    /// The region guard.
    pub guard: RegionGuard,
    /// The label this analysis defines, with its argument patterns
    /// (pattern variables bound by `ψ1`).
    pub defines: (LabelName, Vec<LabelArgPat>),
    /// The forward witness giving the label its meaning.
    pub witness: ForwardWitness,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{BasePat, ConstPat, ExprPat, LhsPat, VarPat};
    use crate::subst::Binding;

    fn dummy_pattern() -> TransformPattern {
        TransformPattern {
            direction: Direction::Forward,
            guard: GuardSpec::Region(RegionGuard {
                psi1: Guard::True,
                psi2: Guard::True,
            }),
            from: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
            ),
            to: StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
            ),
            where_clause: Guard::True,
            witness: Witness::Forward(ForwardWitness::True),
        }
    }

    fn site(i: usize) -> MatchSite {
        let mut s = Subst::new();
        s.bind("X".into(), Binding::Const(i as i64));
        MatchSite {
            index: i,
            subst: s,
        }
    }

    #[test]
    fn choose_all_returns_everything() {
        let delta = [site(0), site(1)];
        let proc = Proc::new("main", "x", vec![]);
        assert_eq!(Choose::All.select(&delta, &proc), delta.to_vec());
    }

    #[test]
    fn choose_fn_is_intersected_with_delta() {
        // A malicious heuristic returning sites outside Δ is clipped.
        let delta = [site(0)];
        let proc = Proc::new("main", "x", vec![]);
        let choose = Choose::Fn(Arc::new(|_d: &[MatchSite], _p: &Proc| {
            vec![site(0), site(99)]
        }));
        assert_eq!(choose.select(&delta, &proc), vec![site(0)]);
    }

    #[test]
    fn optimization_builder() {
        let opt = Optimization::new("demo", dummy_pattern())
            .with_choose(|delta, _| delta.iter().take(1).cloned().collect());
        assert_eq!(opt.name, "demo");
        let proc = Proc::new("main", "x", vec![]);
        let delta = [site(0), site(1)];
        assert_eq!(opt.choose.select(&delta, &proc).len(), 1);
        assert!(format!("{:?}", opt.choose).contains("Fn"));
    }

    #[test]
    fn match_site_display() {
        assert_eq!(site(3).to_string(), "[X ↦ 3]@3");
    }
}
