//! Witnesses: the per-optimization invariants that justify soundness
//! (paper §2.1.2, §2.2).
//!
//! A *forward* witness `P(η)` is a predicate over a single execution
//! state; a *backward* witness `P(η_old, η_new)` relates corresponding
//! states of the original and transformed programs. Witnesses have no
//! effect on an optimization's dynamic semantics; they exist solely so
//! the checker can prove the F1–F3 / B1–B3 obligations.
//!
//! The witness language is a small, closed AST (rather than raw logic)
//! so that both the checker's encoder and human readers can interpret
//! it; it covers all the witnesses used by the paper's optimization
//! suite.

use crate::pattern::{ConstPat, ExprPat, VarPat};
use std::fmt;

/// A forward witness: a predicate over one state `η`.
#[derive(Debug, Clone, PartialEq)]
pub enum ForwardWitness {
    /// The trivially true witness.
    True,
    /// `η(X) = C` — variable `X` holds the constant `C`
    /// (constant propagation).
    VarEqConst(VarPat, ConstPat),
    /// `η(X) = η(Y)` — two variables hold the same value
    /// (copy propagation).
    VarEqVar(VarPat, VarPat),
    /// `η(X) = evalExpr(η, E)` — `X` holds the current value of `E`,
    /// and `E` evaluates without a run-time error (CSE, redundant load
    /// elimination, loop-invariant code motion).
    VarEqExpr(VarPat, ExprPat),
    /// `notPointedTo(X, η)` — no location in the store holds a pointer
    /// to `X`'s location (the taintedness analysis, paper §2.4).
    NotPointedTo(VarPat),
    /// Conjunction of witnesses.
    And(Vec<ForwardWitness>),
}

impl fmt::Display for ForwardWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForwardWitness::True => write!(f, "true"),
            ForwardWitness::VarEqConst(x, c) => write!(f, "η({x}) = {c}"),
            ForwardWitness::VarEqVar(x, y) => write!(f, "η({x}) = η({y})"),
            ForwardWitness::VarEqExpr(x, e) => write!(f, "η({x}) = η({e})"),
            ForwardWitness::NotPointedTo(x) => write!(f, "notPointedTo({x}, η)"),
            ForwardWitness::And(ws) => {
                for (i, w) in ws.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{w}")?;
                }
                Ok(())
            }
        }
    }
}

/// A backward witness: a relation between `η_old` (original program)
/// and `η_new` (transformed program).
#[derive(Debug, Clone, PartialEq)]
pub enum BackwardWitness {
    /// `η_old = η_new` — the states are identical.
    Identical,
    /// `η_old/X = η_new/X` — identical except possibly for the contents
    /// of variable `X` (dead assignment elimination, PRE code
    /// duplication).
    AgreeExcept(VarPat),
}

impl fmt::Display for BackwardWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackwardWitness::Identical => write!(f, "η_old = η_new"),
            BackwardWitness::AgreeExcept(x) => write!(f, "η_old/{x} = η_new/{x}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{BasePat, VarPat};

    #[test]
    fn forward_display_matches_paper() {
        let w = ForwardWitness::VarEqConst(VarPat::pat("Y"), ConstPat::pat("C"));
        assert_eq!(w.to_string(), "η(Y) = C");
        let w2 = ForwardWitness::NotPointedTo(VarPat::pat("X"));
        assert_eq!(w2.to_string(), "notPointedTo(X, η)");
        let w3 = ForwardWitness::And(vec![w, w2]);
        assert_eq!(w3.to_string(), "η(Y) = C ∧ notPointedTo(X, η)");
        let w4 = ForwardWitness::VarEqExpr(
            VarPat::pat("X"),
            ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
        );
        assert_eq!(w4.to_string(), "η(X) = η(Y)");
    }

    #[test]
    fn backward_display_matches_paper() {
        assert_eq!(
            BackwardWitness::AgreeExcept(VarPat::pat("X")).to_string(),
            "η_old/X = η_new/X"
        );
        assert_eq!(BackwardWitness::Identical.to_string(), "η_old = η_new");
    }
}
