//! The standard label definitions (paper §2.1.3, §2.4).
//!
//! These are the pointer-aware forms from §2.4; in the absence of
//! `notTainted` facts (i.e. when no taintedness analysis has run),
//! `¬notTainted(Y)` evaluates to true and the definitions degrade to the
//! conservative forms of §2.1.3.

use crate::guard::Guard;
use crate::label::{LabelArgPat, LabelDef};
use crate::pattern::{BasePat, ExprPat, LhsPat, ProcPat, StmtPat, VarPat};

fn not_tainted(v: VarPat) -> Guard {
    Guard::Label("notTainted".into(), vec![LabelArgPat::Var(v)])
}

/// The `mayDef(Y)` definition:
///
/// ```text
/// mayDef(Y) ≜ case currStmt of
///     *X := Z    ↦ ¬notTainted(Y)
///     X := P(Z)  ↦ X = Y ∨ ¬notTainted(Y)
///     else       ↦ syntacticDef(Y)
/// endcase
/// ```
pub fn may_def_def() -> LabelDef {
    let y = || VarPat::pat("Y");
    LabelDef {
        name: "mayDef".into(),
        params: vec!["Y".into()],
        body: Guard::CaseStmt {
            arms: vec![
                (
                    StmtPat::Assign(LhsPat::Deref(VarPat::pat("$P")), ExprPat::Any),
                    not_tainted(y()).negate(),
                ),
                (
                    StmtPat::Call {
                        dst: VarPat::pat("$D"),
                        proc: ProcPat::Pat("$F".into()),
                        arg: BasePat::Var(VarPat::pat("$Z")),
                    },
                    Guard::or([
                        Guard::VarEq(VarPat::pat("$D"), y()),
                        not_tainted(y()).negate(),
                    ]),
                ),
                (
                    StmtPat::Call {
                        dst: VarPat::pat("$D"),
                        proc: ProcPat::Pat("$F".into()),
                        arg: BasePat::Const(crate::pattern::ConstPat::pat("$C")),
                    },
                    Guard::or([
                        Guard::VarEq(VarPat::pat("$D"), y()),
                        not_tainted(y()).negate(),
                    ]),
                ),
            ],
            default: Box::new(Guard::SyntacticDef(y())),
        },
    }
}

/// The `mayUse(Y)` definition:
///
/// ```text
/// mayUse(Y) ≜ case currStmt of
///     X := *P    ↦ syntacticUse(Y) ∨ ¬notTainted(Y)
///     X := P(Z)  ↦ syntacticUse(Y) ∨ ¬notTainted(Y)
///     else       ↦ syntacticUse(Y)
/// endcase
/// ```
///
/// Reading through a pointer (and calling a procedure, which may read
/// through reachable pointers) may observe any tainted variable.
pub fn may_use_def() -> LabelDef {
    let y = || VarPat::pat("Y");
    let read_or_tainted = || {
        Guard::or([
            Guard::SyntacticUse(y()),
            not_tainted(y()).negate(),
        ])
    };
    LabelDef {
        name: "mayUse".into(),
        params: vec!["Y".into()],
        body: Guard::CaseStmt {
            arms: vec![
                (
                    // Any statement reading through a pointer may read a
                    // tainted variable; this covers both `x := *p` and
                    // `*q := *p` (the latter was caught by the checker —
                    // see EXPERIMENTS.md, E2).
                    StmtPat::Assign(LhsPat::Any, ExprPat::Deref(VarPat::pat("$P"))),
                    read_or_tainted(),
                ),
                (
                    StmtPat::Call {
                        dst: VarPat::pat("$D"),
                        proc: ProcPat::Pat("$F".into()),
                        arg: BasePat::Var(VarPat::pat("$Z")),
                    },
                    read_or_tainted(),
                ),
                (
                    StmtPat::Call {
                        dst: VarPat::pat("$D"),
                        proc: ProcPat::Pat("$F".into()),
                        arg: BasePat::Const(crate::pattern::ConstPat::pat("$C")),
                    },
                    read_or_tainted(),
                ),
            ],
            default: Box::new(Guard::SyntacticUse(y())),
        },
    }
}

/// All standard definitions, used by [`crate::LabelEnv::standard`].
pub fn standard_defs() -> Vec<LabelDef> {
    vec![may_def_def(), may_use_def()]
}

/// The fully conservative `mayDef` of paper §2.1.3, with no appeal to
/// pointer information:
///
/// ```text
/// mayDef(Y) ≜ case currStmt of
///     *X := Z    ↦ true
///     X := P(Z)  ↦ true
///     else       ↦ syntacticDef(Y)
/// endcase
/// ```
pub fn conservative_may_def_def() -> LabelDef {
    let y = || VarPat::pat("Y");
    LabelDef {
        name: "mayDef".into(),
        params: vec!["Y".into()],
        body: Guard::CaseStmt {
            arms: vec![
                (
                    StmtPat::Assign(LhsPat::Deref(VarPat::pat("$P")), ExprPat::Any),
                    Guard::True,
                ),
                (
                    StmtPat::Call {
                        dst: VarPat::pat("$D"),
                        proc: ProcPat::Pat("$F".into()),
                        arg: BasePat::Var(VarPat::pat("$Z")),
                    },
                    Guard::True,
                ),
                (
                    StmtPat::Call {
                        dst: VarPat::pat("$D"),
                        proc: ProcPat::Pat("$F".into()),
                        arg: BasePat::Const(crate::pattern::ConstPat::pat("$C")),
                    },
                    Guard::True,
                ),
            ],
            default: Box::new(Guard::SyntacticDef(y())),
        },
    }
}

/// The fully conservative `mayUse`: pointer reads and calls may use
/// anything.
pub fn conservative_may_use_def() -> LabelDef {
    let y = || VarPat::pat("Y");
    LabelDef {
        name: "mayUse".into(),
        params: vec!["Y".into()],
        body: Guard::CaseStmt {
            arms: vec![
                (
                    StmtPat::Assign(LhsPat::Any, ExprPat::Deref(VarPat::pat("$P"))),
                    Guard::True,
                ),
                (
                    StmtPat::Call {
                        dst: VarPat::pat("$D"),
                        proc: ProcPat::Pat("$F".into()),
                        arg: BasePat::Var(VarPat::pat("$Z")),
                    },
                    Guard::True,
                ),
                (
                    StmtPat::Call {
                        dst: VarPat::pat("$D"),
                        proc: ProcPat::Pat("$F".into()),
                        arg: BasePat::Const(crate::pattern::ConstPat::pat("$C")),
                    },
                    Guard::True,
                ),
            ],
            default: Box::new(Guard::SyntacticUse(y())),
        },
    }
}

/// The §2.1.3 conservative definitions, used by
/// [`crate::LabelEnv::conservative`].
pub fn conservative_defs() -> Vec<LabelDef> {
    vec![conservative_may_def_def(), conservative_may_use_def()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{Domain, NodeCtx};
    use crate::label::{LabelArg, LabelEnv, LabelInst, LabelSet};
    use crate::subst::Subst;
    use cobalt_il::{parse_stmt, Var};

    fn eval_may_def(stmt_src: &str, var: &str, tainted_facts: &[&str]) -> bool {
        let stmt = parse_stmt(stmt_src).unwrap();
        let mut labels = LabelSet::new();
        for v in tainted_facts {
            labels.insert(LabelInst::new(
                "notTainted",
                vec![LabelArg::Var(Var::new(*v))],
            ));
        }
        let env = LabelEnv::standard();
        let domain = Domain::default();
        let ctx = NodeCtx {
            stmt: &stmt,
            labels: &labels,
            env: &env,
            domain: &domain,
        };
        Guard::Label(
            "mayDef".into(),
            vec![LabelArgPat::Var(VarPat::Concrete(Var::new(var)))],
        )
        .eval(&ctx, &Subst::new())
        .unwrap()
    }

    #[test]
    fn call_with_const_arg_may_define_dst() {
        assert!(eval_may_def("y := f(1)", "y", &[]));
        assert!(eval_may_def("z := f(1)", "y", &[]));
        // …but not a notTainted other variable.
        assert!(!eval_may_def("z := f(1)", "y", &["y"]));
        // The destination is always defined, even if notTainted.
        assert!(eval_may_def("y := f(1)", "y", &["y"]));
    }

    #[test]
    fn pointer_store_respects_taint() {
        assert!(eval_may_def("*p := 1", "y", &[]));
        assert!(!eval_may_def("*p := 1", "y", &["y"]));
    }

    #[test]
    fn new_defines_only_its_destination() {
        assert!(eval_may_def("y := new", "y", &[]));
        assert!(!eval_may_def("y := new", "z", &[]));
    }
}
