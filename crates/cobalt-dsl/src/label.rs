//! Labels: named properties of CFG nodes (paper §2.1.3).
//!
//! A label is either *defined* — given by a predicate over the current
//! statement, registered in a [`LabelEnv`] — or *semantic* — attached to
//! nodes by a pure analysis (paper §2.4) and looked up in the node's
//! label set. A label name with no definition is treated as semantic;
//! if it is absent from a node's label set it evaluates to false, which
//! is the conservative direction for the way labels are used in guards
//! (e.g. `¬notTainted(Y)` then holds).

use crate::pattern::{ConstPat, ExprPat, VarPat};
use crate::subst::{Binding, PatVar, Subst};
use crate::error::InstError;
use crate::guard::Guard;
use cobalt_il::{Expr, Var};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// The name of a label, e.g. `mayDef` or `notTainted`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelName(String);

impl LabelName {
    /// Creates a label name.
    pub fn new(name: impl Into<String>) -> Self {
        LabelName(name.into())
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for LabelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for LabelName {
    fn from(s: &str) -> Self {
        LabelName::new(s)
    }
}

/// A concrete label argument (no pattern variables).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LabelArg {
    /// A program variable.
    Var(Var),
    /// A constant.
    Const(i64),
    /// An expression.
    Expr(Expr),
}

impl fmt::Display for LabelArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelArg::Var(v) => write!(f, "{v}"),
            LabelArg::Const(c) => write!(f, "{c}"),
            LabelArg::Expr(e) => write!(f, "{e}"),
        }
    }
}

impl From<LabelArg> for Binding {
    fn from(a: LabelArg) -> Binding {
        match a {
            LabelArg::Var(v) => Binding::Var(v),
            LabelArg::Const(c) => Binding::Const(c),
            LabelArg::Expr(e) => Binding::Expr(e),
        }
    }
}

/// A concrete label instance, e.g. `notTainted(y)`, as stored in a
/// node's label set `L_p(ι)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LabelInst {
    /// The label name.
    pub name: LabelName,
    /// The concrete arguments.
    pub args: Vec<LabelArg>,
}

impl LabelInst {
    /// Creates a label instance.
    pub fn new(name: impl Into<LabelName>, args: Vec<LabelArg>) -> Self {
        LabelInst {
            name: name.into(),
            args,
        }
    }
}

impl fmt::Display for LabelInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A label argument position in a guard: may contain pattern variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LabelArgPat {
    /// A variable position.
    Var(VarPat),
    /// A constant position.
    Const(ConstPat),
    /// An expression position.
    Expr(ExprPat),
}

impl LabelArgPat {
    /// Instantiates into a concrete argument under `theta`.
    ///
    /// # Errors
    ///
    /// Fails on unbound or kind-mismatched pattern variables.
    pub fn instantiate(&self, theta: &Subst) -> Result<LabelArg, InstError> {
        match self {
            LabelArgPat::Var(v) => Ok(LabelArg::Var(v.instantiate(theta)?)),
            LabelArgPat::Const(c) => Ok(LabelArg::Const(c.instantiate(theta)?)),
            LabelArgPat::Expr(e) => Ok(LabelArg::Expr(e.instantiate(theta)?)),
        }
    }

    /// The pattern variables occurring in this argument, with the kind
    /// of fragment each ranges over.
    pub fn pattern_vars(&self, out: &mut Vec<(PatVar, FragKind)>) {
        match self {
            LabelArgPat::Var(VarPat::Pat(p)) => out.push((p.clone(), FragKind::Var)),
            LabelArgPat::Const(ConstPat::Pat(p)) => out.push((p.clone(), FragKind::Const)),
            LabelArgPat::Expr(ExprPat::Pat(p)) => out.push((p.clone(), FragKind::Expr)),
            _ => {}
        }
    }
}

impl fmt::Display for LabelArgPat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelArgPat::Var(v) => write!(f, "{v}"),
            LabelArgPat::Const(c) => write!(f, "{c}"),
            LabelArgPat::Expr(e) => write!(f, "{e}"),
        }
    }
}

/// The kind of fragment a pattern variable ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FragKind {
    /// Program variables.
    Var,
    /// Integer constants.
    Const,
    /// Expressions.
    Expr,
    /// Statement indices (branch targets).
    Index,
    /// Procedure names.
    Proc,
}

/// A user label definition: a predicate over `currStmt` (paper §2.1.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelDef {
    /// The label's name.
    pub name: LabelName,
    /// Formal parameters, bound to the label's arguments on use.
    pub params: Vec<PatVar>,
    /// The defining predicate; refers to the node's statement via
    /// statement guards ([`Guard::Stmt`], [`Guard::CaseStmt`], the
    /// syntactic primitives, …).
    pub body: Guard,
}

/// The label environment: all label definitions in scope.
///
/// # Examples
///
/// ```
/// use cobalt_dsl::{stdlib, LabelEnv};
/// let env = LabelEnv::standard();
/// assert!(env.lookup(&"mayDef".into()).is_some());
/// assert!(env.lookup(&"notTainted".into()).is_none()); // semantic
/// ```
#[derive(Debug, Clone, Default)]
pub struct LabelEnv {
    defs: HashMap<LabelName, LabelDef>,
}

impl LabelEnv {
    /// An empty environment (all labels treated as semantic).
    pub fn new() -> Self {
        LabelEnv::default()
    }

    /// The standard environment: `mayDef`/`mayUse` in their
    /// pointer-aware forms (paper §2.4), which degrade to the
    /// conservative forms when no `notTainted` facts are present.
    pub fn standard() -> Self {
        let mut env = LabelEnv::new();
        for def in crate::stdlib::standard_defs() {
            env.define(def);
        }
        env
    }

    /// The fully conservative environment of paper §2.1.3: pointer
    /// stores and calls may define (and pointer reads and calls may
    /// use) *anything*, with no appeal to pointer analysis.
    pub fn conservative() -> Self {
        let mut env = LabelEnv::new();
        for def in crate::stdlib::conservative_defs() {
            env.define(def);
        }
        env
    }

    /// Registers (or replaces) a label definition.
    pub fn define(&mut self, def: LabelDef) {
        self.defs.insert(def.name.clone(), def);
    }

    /// Looks up a definition; `None` means the label is semantic.
    pub fn lookup(&self, name: &LabelName) -> Option<&LabelDef> {
        self.defs.get(name)
    }

    /// Iterates over all definitions.
    pub fn iter(&self) -> impl Iterator<Item = &LabelDef> {
        self.defs.values()
    }
}

/// The semantic labels attached to one CFG node.
pub type LabelSet = HashSet<LabelInst>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_inst_display() {
        let l = LabelInst::new(
            "notTainted",
            vec![LabelArg::Var(Var::new("y"))],
        );
        assert_eq!(l.to_string(), "notTainted(y)");
    }

    #[test]
    fn label_arg_to_binding() {
        assert_eq!(
            Binding::from(LabelArg::Const(3)),
            Binding::Const(3)
        );
        assert_eq!(
            Binding::from(LabelArg::Var(Var::new("x"))),
            Binding::Var(Var::new("x"))
        );
    }

    #[test]
    fn env_define_and_lookup() {
        let mut env = LabelEnv::new();
        assert!(env.lookup(&"foo".into()).is_none());
        env.define(LabelDef {
            name: "foo".into(),
            params: vec!["X".into()],
            body: Guard::True,
        });
        assert_eq!(env.lookup(&"foo".into()).unwrap().params.len(), 1);
        assert_eq!(env.iter().count(), 1);
    }

    #[test]
    fn standard_env_has_core_labels() {
        let env = LabelEnv::standard();
        for name in ["mayDef", "mayUse"] {
            assert!(env.lookup(&name.into()).is_some(), "{name} missing");
        }
    }
}
