//! Error types for the Cobalt DSL.

use crate::subst::{Binding, PatVar};
use cobalt_il::Expr;
use std::error::Error;
use std::fmt;

/// An error instantiating a pattern under a substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstError {
    message: String,
}

impl InstError {
    pub(crate) fn unbound(p: &PatVar) -> Self {
        InstError {
            message: format!("pattern variable `{p}` is unbound"),
        }
    }

    pub(crate) fn kind_mismatch(p: &PatVar, expected: &str, got: &Binding) -> Self {
        InstError {
            message: format!("pattern variable `{p}` should be bound to a {expected}, but is bound to `{got}`"),
        }
    }

    pub(crate) fn wildcard_in_template() -> Self {
        InstError {
            message: "wildcard patterns cannot appear in a rewrite template".into(),
        }
    }

    pub(crate) fn not_foldable(p: &PatVar, e: &Expr) -> Self {
        InstError {
            message: format!("expression `{e}` bound to `{p}` does not fold to a constant"),
        }
    }
}

impl fmt::Display for InstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instantiation error: {}", self.message)
    }
}

impl Error for InstError {}

/// An error evaluating a guard (e.g. a label applied under a
/// substitution that leaves its arguments unbound, or an undefined
/// label name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardError {
    message: String,
}

impl GuardError {
    /// Creates a guard-evaluation error.
    pub fn new(message: impl Into<String>) -> Self {
        GuardError {
            message: message.into(),
        }
    }
}

impl fmt::Display for GuardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "guard error: {}", self.message)
    }
}

impl Error for GuardError {}

impl From<InstError> for GuardError {
    fn from(e: InstError) -> Self {
        GuardError::new(e.to_string())
    }
}

/// An error parsing Cobalt DSL source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub message: String,
}

impl DslParseError {
    /// Creates a DSL parse error.
    pub fn new(line: usize, col: usize, message: impl Into<String>) -> Self {
        DslParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for DslParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cobalt parse error at line {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for DslParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = InstError::unbound(&PatVar::new("X"));
        assert!(e.to_string().contains("`X`"));
        let g = GuardError::new("label `foo` is not defined");
        assert!(g.to_string().contains("foo"));
        let p = DslParseError::new(2, 5, "expected `=>`");
        assert!(p.to_string().contains("2:5"));
    }

    #[test]
    fn guard_error_from_inst_error() {
        let g: GuardError = InstError::wildcard_in_template().into();
        assert!(g.to_string().contains("wildcard"));
    }
}
