//! The guard language `ψ` (paper §3.2.2): propositional logic over
//! labels, term equality, and `case` pattern matching on the current
//! statement.
//!
//! Guards are used in two modes:
//!
//! * [`Guard::eval`] — decide `ι ⊨θ ψ` for a *given* substitution;
//! * [`Guard::solve`] — find *all* substitutions (over the finite
//!   domains of the procedure's variables, constants, and expressions)
//!   that make the guard hold at a node. This is what the execution
//!   engine uses to seed dataflow facts at enabling statements.

use crate::error::GuardError;
use crate::label::{FragKind, LabelArgPat, LabelEnv, LabelName, LabelSet};
use crate::pattern::{ConstPat, ExprPat, StmtPat, VarPat};
use crate::subst::{Binding, PatVar, Subst};
use cobalt_il::{Expr, Proc, Stmt, Var};

/// Maximum depth of nested label definitions, guarding against cyclic
/// definitions.
const MAX_LABEL_DEPTH: usize = 32;

/// A guard formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Guard {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Negation.
    Not(Box<Guard>),
    /// Conjunction.
    And(Vec<Guard>),
    /// Disjunction.
    Or(Vec<Guard>),
    /// The built-in `stmt(S)` label: the node's statement matches `S`.
    Stmt(StmtPat),
    /// A named label applied to arguments.
    Label(LabelName, Vec<LabelArgPat>),
    /// Built-in primitive: the statement syntactically defines the
    /// variable (declaration of, or assignment to, it — paper §2.1.3).
    SyntacticDef(VarPat),
    /// Built-in primitive: the statement reads the variable's contents.
    SyntacticUse(VarPat),
    /// Built-in semantic primitive: executing the statement does not
    /// change the value of the expression (used by CSE/PRE as the
    /// `unchanged(E)` label of paper §2.3).
    Unchanged(ExprPat),
    /// Equality of two constant positions (e.g. the `¬(C = 0)` side
    /// condition of branch folding).
    ConstEq(ConstPat, ConstPat),
    /// Equality of two variable positions.
    VarEq(VarPat, VarPat),
    /// `case currStmt of pat ↦ ψ … else ↦ ψ endcase`: the first arm
    /// whose pattern matches the statement is taken; arm patterns may
    /// bind arm-local pattern variables.
    CaseStmt {
        /// The arms, tried in order.
        arms: Vec<(StmtPat, Guard)>,
        /// Taken when no arm matches.
        default: Box<Guard>,
    },
}

impl Guard {
    /// `¬g`.
    pub fn negate(self) -> Guard {
        match self {
            Guard::True => Guard::False,
            Guard::False => Guard::True,
            Guard::Not(g) => *g,
            g => Guard::Not(Box::new(g)),
        }
    }

    /// Conjunction helper.
    pub fn and(parts: impl IntoIterator<Item = Guard>) -> Guard {
        let mut v: Vec<Guard> = parts.into_iter().collect();
        if v.len() > 1 {
            return Guard::And(v);
        }
        v.pop().unwrap_or(Guard::True)
    }

    /// Disjunction helper.
    pub fn or(parts: impl IntoIterator<Item = Guard>) -> Guard {
        let mut v: Vec<Guard> = parts.into_iter().collect();
        if v.len() > 1 {
            return Guard::Or(v);
        }
        v.pop().unwrap_or(Guard::False)
    }

    /// A `¬l(args)` shorthand.
    pub fn not_label(name: impl Into<LabelName>, args: Vec<LabelArgPat>) -> Guard {
        Guard::Label(name.into(), args).negate()
    }
}

/// The finite instantiation domain of a procedure: the fragments pattern
/// variables may range over (paper §2.1.1: "pattern variables may be
/// instantiated with any variables / constants of the procedure").
#[derive(Debug, Clone, Default)]
pub struct Domain {
    /// The procedure's variables (including the parameter).
    pub vars: Vec<Var>,
    /// The constants appearing in the procedure.
    pub consts: Vec<i64>,
    /// The right-hand-side expressions appearing in the procedure.
    pub exprs: Vec<Expr>,
}

impl Domain {
    /// Builds the domain of a procedure.
    pub fn of_proc(proc: &Proc) -> Self {
        let vars = proc.variables();
        let consts = proc.constants();
        let mut exprs = Vec::new();
        for s in &proc.stmts {
            if let Stmt::Assign(_, e) = s {
                if !exprs.contains(e) {
                    exprs.push(e.clone());
                }
            }
        }
        Domain { vars, consts, exprs }
    }
}

/// Everything needed to evaluate a guard at one CFG node.
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx<'a> {
    /// The statement at the node (`currStmt`).
    pub stmt: &'a Stmt,
    /// The node's semantic label set `L_p(ι)`.
    pub labels: &'a LabelSet,
    /// Label definitions in scope.
    pub env: &'a LabelEnv,
    /// The instantiation domain of the enclosing procedure.
    pub domain: &'a Domain,
}

impl Guard {
    /// Decides `ι ⊨θ ψ` for a fully binding substitution.
    ///
    /// # Errors
    ///
    /// Returns [`GuardError`] if a pattern variable needed by a label
    /// argument or equality is unbound, or label definitions recurse
    /// too deeply.
    pub fn eval(&self, ctx: &NodeCtx<'_>, theta: &Subst) -> Result<bool, GuardError> {
        self.eval_depth(ctx, theta, 0)
    }

    fn eval_depth(&self, ctx: &NodeCtx<'_>, theta: &Subst, depth: usize) -> Result<bool, GuardError> {
        if depth > MAX_LABEL_DEPTH {
            return Err(GuardError::new(
                "label definitions recurse too deeply (cyclic definition?)",
            ));
        }
        match self {
            Guard::True => Ok(true),
            Guard::False => Ok(false),
            Guard::Not(g) => Ok(!g.eval_depth(ctx, theta, depth)?),
            Guard::And(gs) => {
                for g in gs {
                    if !g.eval_depth(ctx, theta, depth)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Guard::Or(gs) => {
                for g in gs {
                    if g.eval_depth(ctx, theta, depth)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Guard::Stmt(pat) => Ok(pat.try_match(ctx.stmt, theta).is_some()),
            Guard::Label(name, args) => self.eval_label(ctx, theta, name, args, depth),
            Guard::SyntacticDef(vp) => {
                let v = vp.instantiate(theta)?;
                Ok(ctx.stmt.syntactic_def() == Some(&v))
            }
            Guard::SyntacticUse(vp) => {
                let v = vp.instantiate(theta)?;
                Ok(ctx.stmt.read_vars().contains(&&v))
            }
            Guard::Unchanged(ep) => {
                let e = ep.instantiate(theta)?;
                eval_unchanged(ctx, &e, depth)
            }
            Guard::ConstEq(a, b) => Ok(a.instantiate(theta)? == b.instantiate(theta)?),
            Guard::VarEq(a, b) => Ok(a.instantiate(theta)? == b.instantiate(theta)?),
            Guard::CaseStmt { arms, default } => {
                for (pat, g) in arms {
                    if let Some(extended) = pat.try_match(ctx.stmt, theta) {
                        return g.eval_depth(ctx, &extended, depth);
                    }
                }
                default.eval_depth(ctx, theta, depth)
            }
        }
    }

    fn eval_label(
        &self,
        ctx: &NodeCtx<'_>,
        theta: &Subst,
        name: &LabelName,
        args: &[LabelArgPat],
        depth: usize,
    ) -> Result<bool, GuardError> {
        let concrete = args
            .iter()
            .map(|a| a.instantiate(theta))
            .collect::<Result<Vec<_>, _>>()?;
        match ctx.env.lookup(name) {
            Some(def) => {
                if def.params.len() != concrete.len() {
                    return Err(GuardError::new(format!(
                        "label `{name}` expects {} arguments, got {}",
                        def.params.len(),
                        concrete.len()
                    )));
                }
                let mut inner = Subst::new();
                for (p, a) in def.params.iter().zip(concrete) {
                    inner.bind(p.clone(), Binding::from(a));
                }
                def.body.eval_depth(ctx, &inner, depth + 1)
            }
            None => {
                // Semantic label: membership in the node's label set.
                let inst = crate::label::LabelInst {
                    name: name.clone(),
                    args: concrete,
                };
                Ok(ctx.labels.contains(&inst))
            }
        }
    }

    /// Finds all substitutions extending `theta` (over the procedure's
    /// finite fragment domains) under which the guard holds at the node.
    ///
    /// Statement guards contribute bindings by matching; remaining
    /// unbound pattern variables are enumerated over the
    /// [`Domain`].
    ///
    /// # Errors
    ///
    /// Propagates label-evaluation errors.
    pub fn solve(&self, ctx: &NodeCtx<'_>, theta: &Subst) -> Result<Vec<Subst>, GuardError> {
        match self {
            Guard::True => Ok(vec![theta.clone()]),
            Guard::False => Ok(vec![]),
            Guard::And(gs) => {
                let mut acc = vec![theta.clone()];
                for g in gs {
                    let mut next = Vec::new();
                    for t in &acc {
                        next.extend(g.solve(ctx, t)?);
                    }
                    acc = next;
                    if acc.is_empty() {
                        break;
                    }
                }
                Ok(dedup(acc))
            }
            Guard::Or(gs) => {
                let mut acc = Vec::new();
                for g in gs {
                    acc.extend(g.solve(ctx, theta)?);
                }
                Ok(dedup(acc))
            }
            Guard::Stmt(pat) => Ok(pat.try_match(ctx.stmt, theta).into_iter().collect()),
            other => {
                // Enumerate the unbound pattern variables over the
                // procedure's fragment domains, then filter by `eval`.
                let mut needed = Vec::new();
                other.pattern_vars(&mut needed);
                needed.retain(|(p, _)| !theta.contains(p));
                needed.dedup_by(|a, b| a.0 == b.0);
                let mut candidates = vec![theta.clone()];
                for (p, kind) in &needed {
                    let mut next = Vec::new();
                    for t in &candidates {
                        let bindings: Vec<Binding> = match kind {
                            FragKind::Var => {
                                ctx.domain.vars.iter().cloned().map(Binding::Var).collect()
                            }
                            FragKind::Const => {
                                ctx.domain.consts.iter().copied().map(Binding::Const).collect()
                            }
                            FragKind::Expr => {
                                ctx.domain.exprs.iter().cloned().map(Binding::Expr).collect()
                            }
                            FragKind::Index | FragKind::Proc => {
                                return Err(GuardError::new(
                                    "cannot enumerate index/procedure pattern variables in a guard",
                                ))
                            }
                        };
                        for b in bindings {
                            let mut t2 = t.clone();
                            t2.bind(p.clone(), b);
                            next.push(t2);
                        }
                    }
                    candidates = next;
                }
                let mut out = Vec::new();
                for t in candidates {
                    if self.eval(ctx, &t)? {
                        out.push(t);
                    }
                }
                Ok(out)
            }
        }
    }

    /// Collects the pattern variables of the guard that require bindings
    /// for evaluation (label arguments and equality operands; statement
    /// patterns bind by matching and are not included).
    pub fn pattern_vars(&self, out: &mut Vec<(PatVar, FragKind)>) {
        match self {
            Guard::True | Guard::False | Guard::Stmt(_) => {}
            Guard::Not(g) => g.pattern_vars(out),
            Guard::And(gs) | Guard::Or(gs) => {
                for g in gs {
                    g.pattern_vars(out);
                }
            }
            Guard::Label(_, args) => {
                for a in args {
                    a.pattern_vars(out);
                }
            }
            Guard::SyntacticDef(VarPat::Pat(p)) | Guard::SyntacticUse(VarPat::Pat(p)) => {
                out.push((p.clone(), FragKind::Var));
            }
            Guard::SyntacticDef(_) | Guard::SyntacticUse(_) => {}
            Guard::Unchanged(ExprPat::Pat(p)) => out.push((p.clone(), FragKind::Expr)),
            Guard::Unchanged(_) => {}
            Guard::ConstEq(a, b) => {
                for c in [a, b] {
                    if let ConstPat::Pat(p) = c {
                        out.push((p.clone(), FragKind::Const));
                    }
                }
            }
            Guard::VarEq(a, b) => {
                for v in [a, b] {
                    if let VarPat::Pat(p) = v {
                        out.push((p.clone(), FragKind::Var));
                    }
                }
            }
            Guard::CaseStmt { arms, default } => {
                // Arm-pattern variables are arm-local; only the guards'
                // free variables matter. This over-approximates by
                // including arm-locals; enumeration remains sound since
                // matching rebinds them consistently.
                for (_, g) in arms {
                    g.pattern_vars(out);
                }
                default.pattern_vars(out);
            }
        }
    }
}

fn dedup(mut v: Vec<Subst>) -> Vec<Subst> {
    v.sort();
    v.dedup();
    v
}

/// The conservative evaluator for the `unchanged(E)` semantic primitive:
/// true only if executing the statement provably leaves `evalExpr(η, E)`
/// unchanged.
fn eval_unchanged(ctx: &NodeCtx<'_>, e: &Expr, depth: usize) -> Result<bool, GuardError> {
    // Any variable the expression reads must not be (may-)defined.
    let may_def = |v: &Var| -> Result<bool, GuardError> {
        Guard::Label(
            "mayDef".into(),
            vec![LabelArgPat::Var(VarPat::Concrete(v.clone()))],
        )
        .eval_depth(ctx, &Subst::new(), depth + 1)
    };
    for v in e.read_vars() {
        if may_def(v)? {
            return Ok(false);
        }
    }
    if e.has_deref() {
        // The dereferenced target may be changed by pointer stores and
        // calls, and — the subtle case of paper §6 — by a direct
        // assignment to a variable whose address has been taken.
        match ctx.stmt {
            Stmt::Assign(cobalt_il::Lhs::Deref(_), _) | Stmt::Call { .. } => return Ok(false),
            Stmt::Assign(cobalt_il::Lhs::Var(y), _) | Stmt::New(y) => {
                let not_tainted = Guard::Label(
                    "notTainted".into(),
                    vec![LabelArgPat::Var(VarPat::Concrete(y.clone()))],
                )
                .eval_depth(ctx, &Subst::new(), depth + 1)?;
                if !not_tainted {
                    return Ok(false);
                }
            }
            Stmt::Decl(_) | Stmt::Skip | Stmt::If { .. } | Stmt::Return(_) => {}
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::{LabelArg, LabelInst};
    use crate::pattern::BasePat;
    use cobalt_il::parse_stmt;

    fn ctx_parts(stmt_src: &str) -> (Stmt, LabelSet, LabelEnv, Domain) {
        let stmt = parse_stmt(stmt_src).unwrap();
        let labels = LabelSet::new();
        let env = LabelEnv::standard();
        let domain = Domain {
            vars: vec![Var::new("a"), Var::new("b"), Var::new("x"), Var::new("y")],
            consts: vec![0, 2, 5],
            exprs: vec![],
        };
        (stmt, labels, env, domain)
    }

    fn eval_on(guard: &Guard, stmt_src: &str, theta: &Subst) -> bool {
        let (stmt, labels, env, domain) = ctx_parts(stmt_src);
        let ctx = NodeCtx {
            stmt: &stmt,
            labels: &labels,
            env: &env,
            domain: &domain,
        };
        guard.eval(&ctx, theta).unwrap()
    }

    #[test]
    fn stmt_guard_matches() {
        let g = Guard::Stmt(StmtPat::Assign(
            lhs_var("Y"),
            ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
        ));
        assert!(eval_on(&g, "a := 2", &Subst::new()));
        assert!(!eval_on(&g, "a := b", &Subst::new()));
    }

    fn lhs_var(p: &str) -> crate::pattern::LhsPat {
        crate::pattern::LhsPat::Var(VarPat::pat(p))
    }

    #[test]
    fn may_def_conservative_on_pointer_store_and_call() {
        let y = || {
            vec![LabelArgPat::Var(VarPat::Concrete(Var::new("y")))]
        };
        let g = Guard::Label("mayDef".into(), y());
        // Pointer store may define anything (no taint info present).
        assert!(eval_on(&g, "*p := 1", &Subst::new()));
        // Calls may define anything.
        assert!(eval_on(&g, "z := f(1)", &Subst::new()));
        // Plain assignment to another variable does not define y.
        assert!(!eval_on(&g, "x := 1", &Subst::new()));
        // Assignment to y does.
        assert!(eval_on(&g, "y := 1", &Subst::new()));
        // decl y defines y.
        assert!(eval_on(&g, "decl y", &Subst::new()));
    }

    #[test]
    fn may_def_uses_taint_information_when_present() {
        let (stmt, mut labels, env, domain) = ctx_parts("*p := 1");
        labels.insert(LabelInst::new(
            "notTainted",
            vec![LabelArg::Var(Var::new("y"))],
        ));
        let ctx = NodeCtx {
            stmt: &stmt,
            labels: &labels,
            env: &env,
            domain: &domain,
        };
        let g = Guard::Label(
            "mayDef".into(),
            vec![LabelArgPat::Var(VarPat::Concrete(Var::new("y")))],
        );
        // With notTainted(y), a pointer store cannot define y.
        assert!(!g.eval(&ctx, &Subst::new()).unwrap());
    }

    #[test]
    fn may_use_cases() {
        let g = Guard::Label(
            "mayUse".into(),
            vec![LabelArgPat::Var(VarPat::Concrete(Var::new("y")))],
        );
        assert!(eval_on(&g, "x := y + 1", &Subst::new()));
        assert!(eval_on(&g, "return y", &Subst::new()));
        assert!(!eval_on(&g, "x := 2", &Subst::new()));
        // Reading through a pointer may read y (conservatively).
        assert!(eval_on(&g, "x := *p", &Subst::new()));
        // Calls may read y through reachable pointers.
        assert!(eval_on(&g, "x := f(1)", &Subst::new()));
        // A pointer store reads only its operands.
        assert!(!eval_on(&g, "*p := 3", &Subst::new()));
        assert!(eval_on(&g, "*y := 3", &Subst::new()));
        assert!(eval_on(&g, "*p := y", &Subst::new()));
    }

    #[test]
    fn case_stmt_arm_binding() {
        // case currStmt of X := P(Z) ↦ X = Y else ↦ false
        let g = Guard::CaseStmt {
            arms: vec![(
                StmtPat::Call {
                    dst: VarPat::pat("X"),
                    proc: crate::pattern::ProcPat::Pat("P".into()),
                    arg: BasePat::Var(VarPat::pat("Z")),
                },
                Guard::VarEq(VarPat::pat("X"), VarPat::pat("Y")),
            )],
            default: Box::new(Guard::False),
        };
        let mut theta = Subst::new();
        theta.bind("Y".into(), Binding::Var(Var::new("x")));
        assert!(eval_on(&g, "x := f(y)", &theta));
        assert!(!eval_on(&g, "z := f(y)", &theta));
        assert!(!eval_on(&g, "skip", &theta));
    }

    #[test]
    fn solve_binds_from_stmt_pattern() {
        let g = Guard::Stmt(StmtPat::Assign(
            lhs_var("Y"),
            ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
        ));
        let (stmt, labels, env, domain) = ctx_parts("a := 2");
        let ctx = NodeCtx {
            stmt: &stmt,
            labels: &labels,
            env: &env,
            domain: &domain,
        };
        let sols = g.solve(&ctx, &Subst::new()).unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols[0].to_string(), "[C ↦ 2, Y ↦ a]");
    }

    #[test]
    fn solve_enumerates_unbound_label_arguments() {
        // ¬mayUse(X) at `return y`: every domain variable except y.
        let g = Guard::not_label(
            "mayUse",
            vec![LabelArgPat::Var(VarPat::pat("X"))],
        );
        let (stmt, labels, env, domain) = ctx_parts("return y");
        let ctx = NodeCtx {
            stmt: &stmt,
            labels: &labels,
            env: &env,
            domain: &domain,
        };
        let sols = g.solve(&ctx, &Subst::new()).unwrap();
        let bound: Vec<String> = sols
            .iter()
            .map(|s| s.get(&"X".into()).unwrap().to_string())
            .collect();
        assert_eq!(bound, ["a", "b", "x"]);
    }

    #[test]
    fn solve_conjunction_threads_bindings() {
        // stmt(Y := C) ∧ ¬(C = 0)
        let g = Guard::and([
            Guard::Stmt(StmtPat::Assign(
                lhs_var("Y"),
                ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
            )),
            Guard::ConstEq(ConstPat::pat("C"), ConstPat::Concrete(0)).negate(),
        ]);
        let (stmt, labels, env, domain) = ctx_parts("a := 2");
        let ctx = NodeCtx {
            stmt: &stmt,
            labels: &labels,
            env: &env,
            domain: &domain,
        };
        assert_eq!(g.solve(&ctx, &Subst::new()).unwrap().len(), 1);
        let (stmt0, labels, env, domain) = ctx_parts("a := 0");
        let ctx0 = NodeCtx {
            stmt: &stmt0,
            labels: &labels,
            env: &env,
            domain: &domain,
        };
        assert!(g.solve(&ctx0, &Subst::new()).unwrap().is_empty());
    }

    #[test]
    fn unchanged_primitive() {
        let e = |src: &str| crate::pattern::ExprPat::Pat("E".into()).instantiate(&{
            let mut t = Subst::new();
            t.bind("E".into(), Binding::Expr(cobalt_il::parse_expr(src).unwrap()));
            t
        });
        let _ = e; // exercised below via Guard::Unchanged
        let mk = |src: &str| {
            let mut t = Subst::new();
            t.bind(
                "E".into(),
                Binding::Expr(cobalt_il::parse_expr(src).unwrap()),
            );
            (Guard::Unchanged(ExprPat::Pat("E".into())), t)
        };
        // a + b unchanged by x := 1 but not by a := 1.
        let (g, t) = mk("a + b");
        assert!(eval_on(&g, "x := 1", &t));
        assert!(!eval_on(&g, "a := 1", &t));
        // Pointer stores and calls clobber everything conservatively.
        assert!(!eval_on(&g, "*p := 1", &t));
        assert!(!eval_on(&g, "x := f(1)", &t));
        // Loads are invalidated by direct assignment to a (possibly
        // pointed-to) variable — the paper §6 corner case.
        let (g2, t2) = mk("*p");
        assert!(!eval_on(&g2, "y := 1", &t2)); // y may be pointed to
        assert!(eval_on(&g2, "skip", &t2));
    }

    #[test]
    fn cyclic_label_definition_errors() {
        let mut env = LabelEnv::new();
        env.define(crate::label::LabelDef {
            name: "loopy".into(),
            params: vec!["X".into()],
            body: Guard::Label("loopy".into(), vec![LabelArgPat::Var(VarPat::pat("X"))]),
        });
        let stmt = parse_stmt("skip").unwrap();
        let labels = LabelSet::new();
        let domain = Domain::default();
        let ctx = NodeCtx {
            stmt: &stmt,
            labels: &labels,
            env: &env,
            domain: &domain,
        };
        let g = Guard::Label(
            "loopy".into(),
            vec![LabelArgPat::Var(VarPat::Concrete(Var::new("a")))],
        );
        assert!(g.eval(&ctx, &Subst::new()).is_err());
    }

    #[test]
    fn domain_of_proc() {
        let prog = cobalt_il::parse_program(
            "proc main(x) { decl y; y := 5; y := x + 2; return y; }",
        )
        .unwrap();
        let d = Domain::of_proc(prog.main().unwrap());
        assert_eq!(d.vars.len(), 2);
        assert_eq!(d.consts, vec![5, 2]);
        assert_eq!(d.exprs.len(), 2);
    }

    #[test]
    fn and_helper_is_total_over_every_arity() {
        assert_eq!(Guard::and([]), Guard::True);
        assert_eq!(Guard::and([Guard::False]), Guard::False);
        assert_eq!(
            Guard::and([Guard::True, Guard::False]),
            Guard::And(vec![Guard::True, Guard::False])
        );
    }

    #[test]
    fn or_helper_is_total_over_every_arity() {
        assert_eq!(Guard::or([]), Guard::False);
        assert_eq!(Guard::or([Guard::True]), Guard::True);
        assert_eq!(
            Guard::or([Guard::False, Guard::True]),
            Guard::Or(vec![Guard::False, Guard::True])
        );
    }
}
