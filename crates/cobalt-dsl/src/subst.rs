//! Pattern variables and substitutions.
//!
//! A substitution `θ` maps the pattern variables of an optimization to
//! fragments of the procedure being optimized (paper §3.2.1-§3.2.2).
//! Substitutions are the *dataflow facts* of the execution engine
//! (paper §5.2), so they are ordered and hashable.

use cobalt_il::{Expr, ProcName, Var};
use std::collections::BTreeMap;
use std::fmt;

/// A pattern variable, e.g. `X`, `Y`, `C`, `E`.
///
/// By convention pattern variables are upper-case, but any name is
/// allowed; the kind of fragment a pattern variable ranges over is
/// determined by the syntactic position it occupies in a pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatVar(String);

impl PatVar {
    /// Creates a pattern variable.
    pub fn new(name: impl Into<String>) -> Self {
        PatVar(name.into())
    }

    /// The variable's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PatVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for PatVar {
    fn from(s: &str) -> Self {
        PatVar::new(s)
    }
}

/// A program fragment bound to a pattern variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Binding {
    /// A program variable.
    Var(Var),
    /// An integer constant.
    Const(i64),
    /// An expression.
    Expr(Expr),
    /// A statement index (branch target).
    Index(usize),
    /// A procedure name.
    Proc(ProcName),
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Binding::Var(v) => write!(f, "{v}"),
            Binding::Const(c) => write!(f, "{c}"),
            Binding::Expr(e) => write!(f, "{e}"),
            Binding::Index(i) => write!(f, "{i}"),
            Binding::Proc(p) => write!(f, "{p}"),
        }
    }
}

/// A substitution `θ` from pattern variables to program fragments.
///
/// # Examples
///
/// ```
/// use cobalt_dsl::{Binding, Subst};
/// use cobalt_il::Var;
///
/// let mut theta = Subst::new();
/// assert!(theta.bind("Y".into(), Binding::Var(Var::new("a"))));
/// // Rebinding to the same fragment succeeds, to a different one fails.
/// assert!(theta.bind("Y".into(), Binding::Var(Var::new("a"))));
/// assert!(!theta.bind("Y".into(), Binding::Var(Var::new("b"))));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Subst(BTreeMap<PatVar, Binding>);

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Binds `v` to `b`. Returns false (leaving the substitution
    /// unchanged) if `v` is already bound to a different fragment.
    pub fn bind(&mut self, v: PatVar, b: Binding) -> bool {
        match self.0.get(&v) {
            Some(prev) => prev == &b,
            None => {
                self.0.insert(v, b);
                true
            }
        }
    }

    /// The binding of `v`, if any.
    pub fn get(&self, v: &PatVar) -> Option<&Binding> {
        self.0.get(v)
    }

    /// Whether `v` is bound.
    pub fn contains(&self, v: &PatVar) -> bool {
        self.0.contains_key(v)
    }

    /// Number of bound pattern variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the substitution is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(pattern variable, binding)` pairs in order.
    pub fn iter(&self) -> impl Iterator<Item = (&PatVar, &Binding)> {
        self.0.iter()
    }

    /// Merges another substitution in; fails on any conflicting binding
    /// (leaving `self` partially extended — callers clone first).
    pub fn merge(&mut self, other: &Subst) -> bool {
        for (v, b) in other.iter() {
            if !self.bind(v.clone(), b.clone()) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (v, b)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} ↦ {b}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<(PatVar, Binding)> for Subst {
    fn from_iter<T: IntoIterator<Item = (PatVar, Binding)>>(iter: T) -> Self {
        Subst(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_get() {
        let mut s = Subst::new();
        assert!(s.bind("C".into(), Binding::Const(2)));
        assert_eq!(s.get(&"C".into()), Some(&Binding::Const(2)));
        assert!(s.contains(&"C".into()));
        assert!(!s.contains(&"D".into()));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn conflicting_bind_fails() {
        let mut s = Subst::new();
        assert!(s.bind("C".into(), Binding::Const(2)));
        assert!(!s.bind("C".into(), Binding::Const(3)));
        assert_eq!(s.get(&"C".into()), Some(&Binding::Const(2)));
    }

    #[test]
    fn merge_detects_conflicts() {
        let a: Subst = [("X".into(), Binding::Const(1))].into_iter().collect();
        let b: Subst = [("Y".into(), Binding::Const(2))].into_iter().collect();
        let c: Subst = [("X".into(), Binding::Const(9))].into_iter().collect();
        let mut m = a.clone();
        assert!(m.merge(&b));
        assert_eq!(m.len(), 2);
        let mut m2 = a.clone();
        assert!(!m2.merge(&c));
    }

    #[test]
    fn display_matches_paper_notation() {
        let s: Subst = [
            ("C".into(), Binding::Const(2)),
            ("Y".into(), Binding::Var(Var::new("a"))),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.to_string(), "[C ↦ 2, Y ↦ a]");
    }

    #[test]
    fn substs_are_hashable_set_members() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let a: Subst = [("X".into(), Binding::Const(1))].into_iter().collect();
        set.insert(a.clone());
        assert!(set.contains(&a));
        let b: Subst = [("X".into(), Binding::Const(2))].into_iter().collect();
        assert!(!set.contains(&b));
    }
}
