//! A textual surface syntax for Cobalt optimizations and analyses.
//!
//! The paper presents optimizations in mathematical notation; this
//! parser accepts an ASCII rendering of the same shape, so optimization
//! suites can be kept as plain text:
//!
//! ```text
//! forward const_prop {
//!     stmt(Y := C)
//!     followed by !mayDef(Y)
//!     until X := Y => X := C
//!     with witness eta(Y) == C
//! }
//!
//! backward dae {
//!     (stmt(X := ...) || stmt(return ...)) && !mayUse(X)
//!     preceded by !mayUse(X)
//!     since X := E => skip
//!     with witness old/X == new/X
//! }
//!
//! local const_fold {
//!     rewrite X := E => X := fold(E)
//! }
//!
//! analysis taint {
//!     stmt(decl X)
//!     followed by !stmt(... := &X)
//!     defines notTainted(X)
//!     with witness notPointedTo(X)
//! }
//! ```
//!
//! # Pattern-variable conventions
//!
//! Identifiers are classified by case and leading letter, following the
//! paper's conventions (§3.2.1): a **lower-case** identifier is a
//! concrete program variable; an **upper-case** identifier is a pattern
//! variable whose kind is determined by its leading letter — `E…` for
//! expressions, `C…`/`K…` for constants, `I…`/`J…` for branch-target
//! indices (only inside `goto`), `P…` in callee position for procedure
//! names, and anything else for program variables. Numerals are
//! concrete constants; `...` is the wildcard.

use crate::error::DslParseError;
use crate::guard::Guard;
use crate::label::{LabelArgPat, LabelDef};
use crate::opt::{
    Direction, GuardSpec, Optimization, PureAnalysis, RegionGuard, TransformPattern, Witness,
};
use crate::pattern::{BasePat, ConstPat, ExprPat, IdxPat, LhsPat, ProcPat, StmtPat, VarPat};
use crate::witness::{BackwardWitness, ForwardWitness};
use cobalt_il::OpKind;

/// Parses a single optimization definition.
///
/// # Errors
///
/// Returns [`DslParseError`] with the position of the first syntax
/// error.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let opt = cobalt_dsl::parse_optimization(
///     "forward const_prop {
///          stmt(Y := C)
///          followed by !mayDef(Y)
///          until X := Y => X := C
///          with witness eta(Y) == C
///      }",
/// )?;
/// assert_eq!(opt.name, "const_prop");
/// # Ok(())
/// # }
/// ```
pub fn parse_optimization(src: &str) -> Result<Optimization, DslParseError> {
    let mut p = Parser::new(src)?;
    let opt = p.parse_optimization()?;
    p.expect_eof()?;
    Ok(opt)
}

/// Parses a single pure-analysis definition.
///
/// # Errors
///
/// Returns [`DslParseError`] on malformed input.
pub fn parse_analysis(src: &str) -> Result<PureAnalysis, DslParseError> {
    let mut p = Parser::new(src)?;
    let a = p.parse_analysis()?;
    p.expect_eof()?;
    Ok(a)
}

/// A parsed suite file: optimizations, pure analyses, and user label
/// definitions.
#[derive(Debug, Clone, Default)]
pub struct Suite {
    /// The optimizations, in file order.
    pub optimizations: Vec<Optimization>,
    /// The pure analyses, in file order.
    pub analyses: Vec<PureAnalysis>,
    /// User label definitions (paper §2.1.3), to be added to a
    /// [`crate::LabelEnv`].
    pub labels: Vec<LabelDef>,
}

impl Suite {
    /// A label environment containing the standard definitions plus
    /// this suite's own.
    pub fn label_env(&self) -> crate::LabelEnv {
        let mut env = crate::LabelEnv::standard();
        for def in &self.labels {
            env.define(def.clone());
        }
        env
    }
}

/// Parses a file of optimization, analysis, and label definitions.
///
/// # Errors
///
/// Returns [`DslParseError`] on malformed input.
pub fn parse_suite(src: &str) -> Result<Suite, DslParseError> {
    let mut p = Parser::new(src)?;
    let mut suite = Suite::default();
    while !p.at_eof() {
        if p.peek_word("analysis") {
            suite.analyses.push(p.parse_analysis()?);
        } else if p.peek_word("label") {
            suite.labels.push(p.parse_label_def()?);
        } else {
            suite.optimizations.push(p.parse_optimization()?);
        }
    }
    Ok(suite)
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Sym(&'static str),
    Eof,
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

const SYMS: &[&str] = &[
    ":=", "=>", "==", "&&", "||", "...", "(", ")", "{", "}", ",", "!", "*", "&", "/", "+", "-",
    "%", "<", ">",
];

impl Parser {
    fn new(src: &str) -> Result<Self, DslParseError> {
        let mut toks = Vec::new();
        let chars: Vec<char> = src.chars().collect();
        let (mut i, mut line, mut col) = (0usize, 1usize, 1usize);
        'outer: while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                i += 1;
                line += 1;
                col = 1;
                continue;
            }
            if c.is_whitespace() {
                i += 1;
                col += 1;
                continue;
            }
            if c == '#' || (c == '/' && chars.get(i + 1) == Some(&'/')) {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            for s in SYMS {
                let sc: Vec<char> = s.chars().collect();
                if chars[i..].starts_with(&sc) {
                    // `/` would shadow `//` comments; handled above.
                    toks.push((Tok::Sym(s), line, col));
                    i += sc.len();
                    col += sc.len();
                    continue 'outer;
                }
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n = text.parse().map_err(|_| {
                    DslParseError::new(line, col, format!("integer `{text}` out of range"))
                })?;
                toks.push((Tok::Int(n), line, col));
                col += i - start;
                continue;
            }
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                toks.push((Tok::Ident(text), line, col));
                col += i - start;
                continue;
            }
            return Err(DslParseError::new(
                line,
                col,
                format!("unrecognized character `{c}`"),
            ));
        }
        toks.push((Tok::Eof, line, col));
        Ok(Parser { toks, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].0
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn err(&self, msg: impl Into<String>) -> DslParseError {
        let (_, line, col) = &self.toks[self.pos.min(self.toks.len() - 1)];
        DslParseError::new(*line, *col, msg)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].0.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_sym(&mut self, s: &str) -> bool {
        if self.peek() == &Tok::Sym(match_sym(s)) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), DslParseError> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`, found {}", describe(self.peek()))))
        }
    }

    fn peek_word(&self, w: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == w)
    }

    fn eat_word(&mut self, w: &str) -> bool {
        if self.peek_word(w) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self, w: &str) -> Result<(), DslParseError> {
        if self.eat_word(w) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{w}`, found {}", describe(self.peek()))))
        }
    }

    fn expect_ident(&mut self) -> Result<String, DslParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", describe(&other)))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), DslParseError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err(format!("trailing input: {}", describe(self.peek()))))
        }
    }

    // ---- top level -----------------------------------------------------

    fn parse_optimization(&mut self) -> Result<Optimization, DslParseError> {
        let direction = if self.eat_word("forward") {
            Some(Direction::Forward)
        } else if self.eat_word("backward") {
            Some(Direction::Backward)
        } else if self.eat_word("local") {
            None
        } else {
            return Err(self.err("expected `forward`, `backward`, or `local`"));
        };
        let name = self.expect_ident()?;
        self.expect_sym("{")?;
        let opt = match direction {
            None => {
                self.expect_word("rewrite")?;
                let from = self.parse_stmt_pattern()?;
                self.expect_sym("=>")?;
                let to = self.parse_stmt_pattern()?;
                let where_clause = if self.eat_word("where") {
                    self.parse_guard()?
                } else {
                    Guard::True
                };
                Optimization::new(
                    name,
                    TransformPattern {
                        direction: Direction::Forward,
                        guard: GuardSpec::Local,
                        from,
                        to,
                        where_clause,
                        witness: Witness::Forward(ForwardWitness::True),
                    },
                )
            }
            Some(direction) => {
                let psi1 = self.parse_guard()?;
                let (kw2, kw3) = match direction {
                    Direction::Forward => ("followed", "until"),
                    Direction::Backward => ("preceded", "since"),
                };
                self.expect_word(kw2)?;
                self.expect_word("by")?;
                let psi2 = self.parse_guard()?;
                self.expect_word(kw3)?;
                let from = self.parse_stmt_pattern()?;
                self.expect_sym("=>")?;
                let to = self.parse_stmt_pattern()?;
                let where_clause = if self.eat_word("where") {
                    self.parse_guard()?
                } else {
                    Guard::True
                };
                self.expect_word("with")?;
                self.expect_word("witness")?;
                let witness = match direction {
                    Direction::Forward => Witness::Forward(self.parse_forward_witness()?),
                    Direction::Backward => Witness::Backward(self.parse_backward_witness()?),
                };
                Optimization::new(
                    name,
                    TransformPattern {
                        direction,
                        guard: GuardSpec::Region(RegionGuard { psi1, psi2 }),
                        from,
                        to,
                        where_clause,
                        witness,
                    },
                )
            }
        };
        self.expect_sym("}")?;
        Ok(opt)
    }

    fn parse_analysis(&mut self) -> Result<PureAnalysis, DslParseError> {
        self.expect_word("analysis")?;
        let name = self.expect_ident()?;
        self.expect_sym("{")?;
        let psi1 = self.parse_guard()?;
        self.expect_word("followed")?;
        self.expect_word("by")?;
        let psi2 = self.parse_guard()?;
        self.expect_word("defines")?;
        let label = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut args = Vec::new();
        loop {
            args.push(self.parse_label_arg()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        self.expect_word("with")?;
        self.expect_word("witness")?;
        let witness = self.parse_forward_witness()?;
        self.expect_sym("}")?;
        Ok(PureAnalysis {
            name,
            guard: RegionGuard { psi1, psi2 },
            defines: (label.as_str().into(), args),
            witness,
        })
    }

    /// Parses a user label definition (paper §2.1.3):
    ///
    /// ```text
    /// label mayDef(Y) {
    ///     case *P := ...   => !notTainted(Y)
    ///     case X := F(Z)   => X == Y || !notTainted(Y)
    ///     else             => syntacticDef(Y)
    /// }
    /// ```
    ///
    /// A body without `case` arms is a plain guard:
    /// `label l(X) { <guard> }`.
    fn parse_label_def(&mut self) -> Result<LabelDef, DslParseError> {
        self.expect_word("label")?;
        let name = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut params = Vec::new();
        loop {
            params.push(self.expect_ident()?.as_str().into());
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        self.expect_sym("{")?;
        let body = if self.peek_word("case") {
            let mut arms = Vec::new();
            while self.eat_word("case") {
                let pat = self.parse_stmt_pattern()?;
                self.expect_sym("=>")?;
                let guard = self.parse_guard()?;
                arms.push((pat, guard));
            }
            self.expect_word("else")?;
            self.expect_sym("=>")?;
            let default = Box::new(self.parse_guard()?);
            Guard::CaseStmt { arms, default }
        } else {
            self.parse_guard()?
        };
        self.expect_sym("}")?;
        Ok(LabelDef {
            name: name.as_str().into(),
            params,
            body,
        })
    }

    // ---- guards ---------------------------------------------------------

    fn parse_guard(&mut self) -> Result<Guard, DslParseError> {
        let mut parts = vec![self.parse_guard_and()?];
        while self.eat_sym("||") {
            parts.push(self.parse_guard_and()?);
        }
        Ok(Guard::or(parts))
    }

    fn parse_guard_and(&mut self) -> Result<Guard, DslParseError> {
        let mut parts = vec![self.parse_guard_atom()?];
        while self.eat_sym("&&") {
            parts.push(self.parse_guard_atom()?);
        }
        Ok(Guard::and(parts))
    }

    fn parse_guard_atom(&mut self) -> Result<Guard, DslParseError> {
        if self.eat_sym("!") {
            return Ok(self.parse_guard_atom()?.negate());
        }
        if self.eat_sym("(") {
            let g = self.parse_guard()?;
            self.expect_sym(")")?;
            return Ok(g);
        }
        if self.eat_word("true") {
            return Ok(Guard::True);
        }
        if self.eat_word("false") {
            return Ok(Guard::False);
        }
        // stmt(...), unchanged(...), syntacticDef/Use(...), labels, and
        // equalities `A == B`.
        let name = self.expect_ident()?;
        if self.peek() == &Tok::Sym("==") {
            // VarEq / ConstEq with the first operand an identifier.
            self.bump();
            return self.parse_equality(Operand::Ident(name));
        }
        self.expect_sym("(")?;
        let g = match name.as_str() {
            "stmt" => {
                let pat = self.parse_stmt_pattern()?;
                Guard::Stmt(pat)
            }
            "unchanged" => Guard::Unchanged(self.parse_expr_pattern()?),
            "syntacticDef" => Guard::SyntacticDef(self.parse_var_pattern()?),
            "syntacticUse" => Guard::SyntacticUse(self.parse_var_pattern()?),
            _ => {
                let mut args = Vec::new();
                loop {
                    args.push(self.parse_label_arg()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                Guard::Label(name.as_str().into(), args)
            }
        };
        self.expect_sym(")")?;
        Ok(g)
    }

    fn parse_equality(&mut self, lhs: Operand) -> Result<Guard, DslParseError> {
        let rhs = match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Operand::Int(n)
            }
            Tok::Ident(s) => {
                self.bump();
                Operand::Ident(s)
            }
            other => return Err(self.err(format!("expected operand, found {}", describe(&other)))),
        };
        match (&lhs, &rhs) {
            (Operand::Int(a), Operand::Int(b)) => Ok(Guard::ConstEq(
                ConstPat::Concrete(*a),
                ConstPat::Concrete(*b),
            )),
            (Operand::Ident(a), Operand::Int(b)) => {
                Ok(Guard::ConstEq(const_pat(a), ConstPat::Concrete(*b)))
            }
            (Operand::Int(a), Operand::Ident(b)) => {
                Ok(Guard::ConstEq(ConstPat::Concrete(*a), const_pat(b)))
            }
            (Operand::Ident(a), Operand::Ident(b)) => {
                if is_const_ident(a) || is_const_ident(b) {
                    Ok(Guard::ConstEq(const_pat(a), const_pat(b)))
                } else {
                    Ok(Guard::VarEq(var_pat(a), var_pat(b)))
                }
            }
        }
    }

    fn parse_label_arg(&mut self) -> Result<LabelArgPat, DslParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(LabelArgPat::Const(ConstPat::Concrete(n)))
            }
            Tok::Sym("*") | Tok::Sym("&") => Ok(LabelArgPat::Expr(self.parse_expr_pattern()?)),
            Tok::Ident(s) => {
                self.bump();
                if is_expr_ident(&s) {
                    Ok(LabelArgPat::Expr(ExprPat::Pat(s.as_str().into())))
                } else if is_const_ident(&s) {
                    Ok(LabelArgPat::Const(const_pat(&s)))
                } else {
                    Ok(LabelArgPat::Var(var_pat(&s)))
                }
            }
            other => Err(self.err(format!(
                "expected label argument, found {}",
                describe(&other)
            ))),
        }
    }

    // ---- witnesses ------------------------------------------------------

    fn parse_forward_witness(&mut self) -> Result<ForwardWitness, DslParseError> {
        let first = self.parse_forward_witness_atom()?;
        let mut rest = Vec::new();
        while self.eat_sym("&&") {
            rest.push(self.parse_forward_witness_atom()?);
        }
        Ok(if rest.is_empty() {
            first
        } else {
            let mut parts = vec![first];
            parts.extend(rest);
            ForwardWitness::And(parts)
        })
    }

    fn parse_forward_witness_atom(&mut self) -> Result<ForwardWitness, DslParseError> {
        if self.eat_word("true") {
            return Ok(ForwardWitness::True);
        }
        if self.eat_word("notPointedTo") {
            self.expect_sym("(")?;
            let v = self.parse_var_pattern()?;
            self.expect_sym(")")?;
            return Ok(ForwardWitness::NotPointedTo(v));
        }
        self.expect_word("eta")?;
        self.expect_sym("(")?;
        let x = self.parse_var_pattern()?;
        self.expect_sym(")")?;
        self.expect_sym("==")?;
        if self.eat_word("eta") {
            self.expect_sym("(")?;
            let e = self.parse_expr_pattern()?;
            self.expect_sym(")")?;
            return Ok(match e {
                ExprPat::Base(BasePat::Var(y)) => ForwardWitness::VarEqVar(x, y),
                e => ForwardWitness::VarEqExpr(x, e),
            });
        }
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(ForwardWitness::VarEqConst(x, ConstPat::Concrete(n)))
            }
            Tok::Ident(s) if is_const_ident(&s) => {
                self.bump();
                Ok(ForwardWitness::VarEqConst(x, const_pat(&s)))
            }
            other => Err(self.err(format!(
                "expected constant or `eta(...)`, found {}",
                describe(&other)
            ))),
        }
    }

    fn parse_backward_witness(&mut self) -> Result<BackwardWitness, DslParseError> {
        self.expect_word("old")?;
        if self.eat_sym("/") {
            let x = self.parse_var_pattern()?;
            self.expect_sym("==")?;
            self.expect_word("new")?;
            self.expect_sym("/")?;
            let x2 = self.parse_var_pattern()?;
            if x != x2 {
                return Err(self.err("old/X == new/Y must name the same variable"));
            }
            Ok(BackwardWitness::AgreeExcept(x))
        } else {
            self.expect_sym("==")?;
            self.expect_word("new")?;
            Ok(BackwardWitness::Identical)
        }
    }

    // ---- patterns -------------------------------------------------------

    fn parse_var_pattern(&mut self) -> Result<VarPat, DslParseError> {
        let s = self.expect_ident()?;
        Ok(var_pat(&s))
    }

    fn parse_stmt_pattern(&mut self) -> Result<StmtPat, DslParseError> {
        if self.eat_word("skip") {
            return Ok(StmtPat::Skip);
        }
        if self.eat_word("decl") {
            return Ok(StmtPat::Decl(self.parse_var_pattern()?));
        }
        if self.eat_word("return") {
            if self.eat_sym("...") {
                return Ok(StmtPat::ReturnAny);
            }
            return Ok(StmtPat::Return(self.parse_var_pattern()?));
        }
        if self.eat_word("if") {
            let cond = self.parse_base_pattern()?;
            self.expect_word("goto")?;
            let t1 = self.parse_idx_pattern()?;
            self.expect_word("else")?;
            let t2 = self.parse_idx_pattern()?;
            return Ok(StmtPat::If {
                cond,
                then_target: t1,
                else_target: t2,
            });
        }
        // Left-hand side: `*X`, `...`, or a variable.
        let lhs = if self.eat_sym("*") {
            LhsPat::Deref(self.parse_var_pattern()?)
        } else if self.eat_sym("...") {
            LhsPat::Any
        } else {
            LhsPat::Var(self.parse_var_pattern()?)
        };
        self.expect_sym(":=")?;
        // Right-hand side: `new`, a call `P(b)`, or an expression.
        if self.eat_word("new") {
            return match lhs {
                LhsPat::Var(v) => Ok(StmtPat::New(v)),
                _ => Err(self.err("`:= new` requires a variable destination")),
            };
        }
        if let (Tok::Ident(callee), Tok::Sym("(")) = (
            self.peek().clone(),
            self.toks[(self.pos + 1).min(self.toks.len() - 1)].0.clone(),
        ) {
            if !is_expr_ident(&callee) && !self.peek_word("fold") {
                self.bump();
                self.bump();
                let arg = self.parse_base_pattern()?;
                self.expect_sym(")")?;
                let dst = match lhs {
                    LhsPat::Var(v) => v,
                    _ => return Err(self.err("calls require a variable destination")),
                };
                return Ok(StmtPat::Call {
                    dst,
                    proc: ProcPat::Pat(callee.as_str().into()),
                    arg,
                });
            }
        }
        let e = self.parse_expr_pattern()?;
        Ok(StmtPat::Assign(lhs, e))
    }

    fn parse_idx_pattern(&mut self) -> Result<IdxPat, DslParseError> {
        match self.peek().clone() {
            Tok::Int(n) if n >= 0 => {
                self.bump();
                Ok(IdxPat::Concrete(n as usize))
            }
            Tok::Ident(s) => {
                self.bump();
                Ok(IdxPat::Pat(s.as_str().into()))
            }
            other => Err(self.err(format!(
                "expected branch target, found {}",
                describe(&other)
            ))),
        }
    }

    fn parse_base_pattern(&mut self) -> Result<BasePat, DslParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(BasePat::Const(ConstPat::Concrete(n)))
            }
            Tok::Sym("-") => {
                self.bump();
                match self.bump() {
                    Tok::Int(n) => Ok(BasePat::Const(ConstPat::Concrete(-n))),
                    other => {
                        Err(self.err(format!("expected integer, found {}", describe(&other))))
                    }
                }
            }
            Tok::Ident(s) => {
                self.bump();
                if is_const_ident(&s) {
                    Ok(BasePat::Const(const_pat(&s)))
                } else {
                    Ok(BasePat::Var(var_pat(&s)))
                }
            }
            other => Err(self.err(format!(
                "expected variable or constant, found {}",
                describe(&other)
            ))),
        }
    }

    fn parse_expr_pattern(&mut self) -> Result<ExprPat, DslParseError> {
        if self.eat_sym("...") {
            return Ok(ExprPat::Any);
        }
        if self.eat_sym("*") {
            return Ok(ExprPat::Deref(self.parse_var_pattern()?));
        }
        if self.eat_sym("&") {
            return Ok(ExprPat::AddrOf(self.parse_var_pattern()?));
        }
        if self.eat_word("fold") {
            self.expect_sym("(")?;
            let e = self.expect_ident()?;
            self.expect_sym(")")?;
            return Ok(ExprPat::Fold(e.as_str().into()));
        }
        // Expression pattern variable?
        if let Tok::Ident(s) = self.peek().clone() {
            if is_expr_ident(&s) {
                self.bump();
                return Ok(ExprPat::Pat(s.as_str().into()));
            }
        }
        let first = self.parse_base_pattern()?;
        if let Some(op) = self.peek_binop() {
            self.bump();
            let second = self.parse_base_pattern()?;
            return Ok(ExprPat::Op(op, vec![first, second]));
        }
        Ok(ExprPat::Base(first))
    }

    fn peek_binop(&self) -> Option<OpKind> {
        match self.peek() {
            Tok::Sym("+") => Some(OpKind::Add),
            Tok::Sym("-") => Some(OpKind::Sub),
            Tok::Sym("*") => Some(OpKind::Mul),
            Tok::Sym("/") => Some(OpKind::Div),
            Tok::Sym("%") => Some(OpKind::Mod),
            Tok::Sym("==") => Some(OpKind::Eq),
            Tok::Sym("<") => Some(OpKind::Lt),
            Tok::Sym(">") => Some(OpKind::Gt),
            _ => None,
        }
    }
}

enum Operand {
    Ident(String),
    Int(i64),
}

fn is_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

fn is_expr_ident(s: &str) -> bool {
    is_upper(s) && s.starts_with('E')
}

fn is_const_ident(s: &str) -> bool {
    is_upper(s) && (s.starts_with('C') || s.starts_with('K'))
}

fn var_pat(s: &str) -> VarPat {
    if is_upper(s) {
        VarPat::Pat(s.into())
    } else {
        VarPat::Concrete(cobalt_il::Var::new(s))
    }
}

fn const_pat(s: &str) -> ConstPat {
    ConstPat::Pat(s.into())
}

fn match_sym(s: &str) -> &'static str {
    SYMS.iter().find(|&&x| x == s).copied().unwrap_or("")
}

fn describe(t: &Tok) -> String {
    match t {
        Tok::Ident(s) => format!("identifier `{s}`"),
        Tok::Int(n) => format!("integer `{n}`"),
        Tok::Sym(s) => format!("`{s}`"),
        Tok::Eof => "end of input".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_const_prop_equal_to_builder() {
        let parsed = parse_optimization(
            "forward const_prop {
                stmt(Y := C)
                followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        )
        .unwrap();
        let built = cobalt_test_fixture_const_prop();
        assert_eq!(parsed.name, built.name);
        assert_eq!(parsed.pattern, built.pattern);
    }

    // Mirror of cobalt_opts::const_prop, duplicated here to avoid a
    // dependency cycle.
    fn cobalt_test_fixture_const_prop() -> Optimization {
        Optimization::new(
            "const_prop",
            TransformPattern {
                direction: Direction::Forward,
                guard: GuardSpec::Region(RegionGuard {
                    psi1: Guard::Stmt(StmtPat::Assign(
                        LhsPat::Var(VarPat::pat("Y")),
                        ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                    )),
                    psi2: Guard::not_label(
                        "mayDef",
                        vec![LabelArgPat::Var(VarPat::pat("Y"))],
                    ),
                }),
                from: StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("X")),
                    ExprPat::Base(BasePat::Var(VarPat::pat("Y"))),
                ),
                to: StmtPat::Assign(
                    LhsPat::Var(VarPat::pat("X")),
                    ExprPat::Base(BasePat::Const(ConstPat::pat("C"))),
                ),
                where_clause: Guard::True,
                witness: Witness::Forward(ForwardWitness::VarEqConst(
                    VarPat::pat("Y"),
                    ConstPat::pat("C"),
                )),
            },
        )
    }

    #[test]
    fn parses_backward_dae() {
        let opt = parse_optimization(
            "backward dae {
                (stmt(X := ...) || stmt(return ...)) && !mayUse(X)
                preceded by !mayUse(X)
                since X := E => skip
                with witness old/X == new/X
            }",
        )
        .unwrap();
        assert_eq!(opt.pattern.direction, Direction::Backward);
        assert_eq!(
            opt.pattern.witness,
            Witness::Backward(BackwardWitness::AgreeExcept(VarPat::pat("X")))
        );
        assert_eq!(opt.pattern.to, StmtPat::Skip);
    }

    #[test]
    fn parses_local_rewrites() {
        let fold = parse_optimization(
            "local const_fold { rewrite X := E => X := fold(E) }",
        )
        .unwrap();
        assert_eq!(fold.pattern.guard, GuardSpec::Local);
        assert_eq!(
            fold.pattern.to,
            StmtPat::Assign(LhsPat::Var(VarPat::pat("X")), ExprPat::Fold("E".into()))
        );
        let bf = parse_optimization(
            "local branch_fold_true {
                rewrite if C goto I1 else I2 => if C goto I1 else I1
                where !(C == 0)
            }",
        )
        .unwrap();
        assert!(matches!(bf.pattern.from, StmtPat::If { .. }));
        assert_eq!(
            bf.pattern.where_clause,
            Guard::ConstEq(ConstPat::pat("C"), ConstPat::Concrete(0)).negate()
        );
    }

    #[test]
    fn parses_taint_analysis() {
        let a = parse_analysis(
            "analysis taint {
                stmt(decl X)
                followed by !stmt(... := &X)
                defines notTainted(X)
                with witness notPointedTo(X)
            }",
        )
        .unwrap();
        assert_eq!(a.name, "taint");
        assert_eq!(a.witness, ForwardWitness::NotPointedTo(VarPat::pat("X")));
        assert_eq!(
            a.guard.psi2,
            Guard::Stmt(StmtPat::Assign(
                LhsPat::Any,
                ExprPat::AddrOf(VarPat::pat("X"))
            ))
            .negate()
        );
    }

    #[test]
    fn parses_cse_with_unchanged() {
        let opt = parse_optimization(
            "forward cse {
                stmt(X := E) && unchanged(E)
                followed by unchanged(E) && !mayDef(X)
                until Y := E => Y := X
                with witness eta(X) == eta(E)
            }",
        )
        .unwrap();
        assert!(matches!(
            opt.pattern.witness,
            Witness::Forward(ForwardWitness::VarEqExpr(_, ExprPat::Pat(_)))
        ));
    }

    #[test]
    fn parses_load_elim_with_deref() {
        let opt = parse_optimization(
            "forward load_elim {
                stmt(X := *P) && unchanged(*P)
                followed by unchanged(*P) && !mayDef(X)
                until Y := *P => Y := X
                with witness eta(X) == eta(*P)
            }",
        )
        .unwrap();
        assert_eq!(
            opt.pattern.from,
            StmtPat::Assign(LhsPat::Var(VarPat::pat("Y")), ExprPat::Deref(VarPat::pat("P")))
        );
    }

    #[test]
    fn parses_call_and_concrete_vars() {
        let opt = parse_optimization(
            "local demo { rewrite X := P(Z) => X := y }",
        )
        .unwrap();
        assert!(matches!(opt.pattern.from, StmtPat::Call { .. }));
        assert_eq!(
            opt.pattern.to,
            StmtPat::Assign(
                LhsPat::Var(VarPat::pat("X")),
                ExprPat::Base(BasePat::Var(VarPat::Concrete(cobalt_il::Var::new("y"))))
            )
        );
    }

    #[test]
    fn parse_suite_splits_kinds() {
        let suite = parse_suite(
            "forward a1 {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
             }
             analysis t {
                stmt(decl X) followed by !stmt(... := &X)
                defines notTainted(X)
                with witness notPointedTo(X)
             }
             local s { rewrite X := X => skip }",
        )
        .unwrap();
        assert_eq!(suite.optimizations.len(), 2);
        assert_eq!(suite.analyses.len(), 1);
    }

    #[test]
    fn parses_label_definitions() {
        let suite = parse_suite(
            "label myUse(Y) {
                case X := *P => syntacticUse(Y) || !notTainted(Y)
                else => syntacticUse(Y)
             }
             label trivial(X) { true }",
        )
        .unwrap();
        assert_eq!(suite.labels.len(), 2);
        let def = &suite.labels[0];
        assert_eq!(def.name.as_str(), "myUse");
        assert_eq!(def.params.len(), 1);
        assert!(matches!(def.body, Guard::CaseStmt { .. }));
        assert_eq!(suite.labels[1].body, Guard::True);
        // The env helper layers the defs over the standard ones.
        let env = suite.label_env();
        assert!(env.lookup(&"myUse".into()).is_some());
        assert!(env.lookup(&"mayDef".into()).is_some());
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_optimization("forward x {").unwrap_err();
        assert!(err.line >= 1);
        let err = parse_optimization(
            "forward x { stmt(Y := C) followed by true until X := Y }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("=>") || err.to_string().contains("with"));
    }

    #[test]
    fn comments_are_allowed() {
        let opt = parse_optimization(
            "# the classic
             forward const_prop {
                stmt(Y := C) // enabling
                followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
             }",
        )
        .unwrap();
        assert_eq!(opt.name, "const_prop");
    }

    #[test]
    fn forward_witness_parses_single_atom_and_conjunction() {
        let single = parse_optimization(
            "forward w1 {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        )
        .unwrap();
        assert_eq!(
            single.pattern.witness,
            Witness::Forward(ForwardWitness::VarEqConst(VarPat::pat("Y"), ConstPat::pat("C")))
        );
        let conj = parse_optimization(
            "forward w2 {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C && true
            }",
        )
        .unwrap();
        let Witness::Forward(ForwardWitness::And(parts)) = &conj.pattern.witness else {
            panic!("expected a conjunction, got {:?}", conj.pattern.witness);
        };
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[1], ForwardWitness::True);
    }
}
