//! Property tests for the translation validator: it accepts what the
//! proven suite produces and never accepts an actual miscompilation.

use cobalt_dsl::LabelEnv;
use cobalt_engine::Engine;
use cobalt_il::{generate, GenConfig, Interp, Program};
use cobalt_support::prop::Config;
use cobalt_support::{prop_assert, props};
use cobalt_tv::validate_proc;

props! {
    config = Config::with_cases(48);

    /// Completeness on the suite: each single pass's output validates.
    fn validator_accepts_suite_outputs(seed in 0u64..4_000) {
        let prog = generate(&GenConfig::sized(24, seed));
        let engine = Engine::new(LabelEnv::standard());
        for opt in [
            cobalt_opts::const_prop(),
            cobalt_opts::copy_prop(),
            cobalt_opts::const_fold(),
            cobalt_opts::branch_fold_true(),
            cobalt_opts::branch_fold_false(),
            cobalt_opts::self_assign_removal(),
            cobalt_opts::dae(),
        ] {
            let (optimized, n) = engine
                .optimize_program(&prog, &[], std::slice::from_ref(&opt), 1)
                .unwrap();
            if n == 0 {
                continue;
            }
            let report =
                validate_proc(prog.main().unwrap(), optimized.main().unwrap()).unwrap();
            prop_assert!(
                report.validated(),
                "{} output rejected: {:?}",
                opt.name,
                report.rejections()
            );
        }
    }

    /// Soundness: a random single-statement corruption that observably
    /// changes behaviour is never validated.
    fn validator_rejects_observable_corruptions(
        seed in 0u64..4_000,
        victim in 0usize..24,
        delta in 1i64..5,
    ) {
        let prog = generate(&GenConfig::sized(24, seed));
        let main = prog.main().unwrap().clone();
        let Some(stmt) = main.stmts.get(victim) else { return Ok(()) };
        // Corrupt a constant assignment.
        let corrupted_stmt = match stmt {
            cobalt_il::Stmt::Assign(
                lhs @ cobalt_il::Lhs::Var(_),
                cobalt_il::Expr::Base(cobalt_il::BaseExpr::Const(c)),
            ) => cobalt_il::Stmt::Assign(
                lhs.clone(),
                cobalt_il::Expr::Base(cobalt_il::BaseExpr::Const(c + delta)),
            ),
            _ => return Ok(()),
        };
        let mut new_main = main.clone();
        new_main.stmts[victim] = corrupted_stmt;
        let new_prog = prog.with_proc_replaced(new_main.clone());
        // Only meaningful when the corruption is observable.
        let observable = [0i64, 1, 3].iter().any(|&arg| {
            match (
                Interp::new(&prog).with_fuel(50_000).run(arg),
                Interp::new(&new_prog).with_fuel(50_000).run(arg),
            ) {
                (Ok(a), Ok(b)) => a != b,
                (Ok(_), Err(_)) => true,
                _ => false,
            }
        });
        if observable {
            let report = validate_proc(prog.main().unwrap(), &new_main).unwrap();
            prop_assert!(
                !report.validated(),
                "validator accepted an observable corruption at {victim}"
            );
        }
    }
}

#[test]
fn validator_handles_multi_procedure_programs() {
    let prog: Program = cobalt_il::parse_program(
        "proc main(x) { decl r; decl a; r := f(x); a := 2; r := r + a; return r; }
         proc f(n) { decl t; t := n + n; return t; }",
    )
    .unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let (optimized, _) = engine
        .optimize_program(&prog, &[], &cobalt_opts::default_pipeline(), 1)
        .unwrap();
    for proc in &prog.procs {
        let new_proc = optimized.proc(&proc.name).unwrap();
        let report = validate_proc(proc, new_proc).unwrap();
        assert!(report.validated(), "{:?}", report.rejections());
    }
}
