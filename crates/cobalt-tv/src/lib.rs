//! # cobalt-tv
//!
//! A translation-validation baseline for the Cobalt reproduction.
//!
//! The paper (§1, §8) contrasts two ways to trust an optimizer:
//! *translation validation* checks each compiled program against its
//! original — paying a validation cost on **every** compile and offering
//! no recourse when validation fails — whereas Cobalt proves the
//! optimization sound **once**, for all input programs. This crate
//! implements the former so the benchmark harness (experiment E5) can
//! measure the crossover.
//!
//! The validator recomputes concrete dataflow [facts] for each procedure
//! pair and discharges a per-site verification condition with the same
//! automatic theorem prover the Cobalt checker uses.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobalt_il::parse_program;
//! use cobalt_tv::validate_proc;
//!
//! let orig = parse_program("proc main(x) { a := 2; c := a; return c; }")?;
//! let new = parse_program("proc main(x) { a := 2; c := 2; return c; }")?;
//! let report = validate_proc(orig.main().unwrap(), new.main().unwrap())?;
//! assert!(report.validated());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod facts;
pub mod validate;

pub use facts::{anticipated, live_vars, value_facts, Fact};
pub use validate::{validate_proc, SiteVerdict, TvError, ValidationReport};
