//! The per-compilation translation validator.
//!
//! Given the original and the transformed procedure, the validator
//! re-derives dataflow facts about the *concrete* original program and
//! discharges, for every changed statement, a verification condition
//! justifying the change — the approach of translation validation
//! (Pnueli et al. 1998; Necula 2000) that the paper contrasts with
//! proving optimizations sound once and for all (§1, §8).
//!
//! Supported rewrite forms (matching the Cobalt suite):
//!
//! * value rewrites `x := e ⇒ x := e'` — validated by a solver VC under
//!   the node's value facts;
//! * removals `x := e ⇒ skip` — validated by liveness of `x` in the
//!   transformed program;
//! * insertions `skip ⇒ x := e` — validated by anticipation of `x := e`
//!   in the original program;
//! * branch retargeting `if c … ⇒ if c …` — validated by constant
//!   conditions.

use crate::facts::{anticipated, live_vars, value_facts, Fact};
use cobalt_il::{BaseExpr, Cfg, Expr, Lhs, Proc, Stmt, WellFormedError};
use cobalt_logic::{Formula, ProofTask, Solver, TermId};
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Why validation could not even be attempted.
#[derive(Debug)]
pub enum TvError {
    /// One of the procedures is ill-formed.
    IllFormed(WellFormedError),
    /// The procedures differ structurally (name, parameter, or length),
    /// which single-statement rewrites never produce.
    StructureMismatch(String),
}

impl fmt::Display for TvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TvError::IllFormed(e) => write!(f, "translation validation: {e}"),
            TvError::StructureMismatch(m) => {
                write!(f, "translation validation: structure mismatch: {m}")
            }
        }
    }
}

impl Error for TvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TvError::IllFormed(e) => Some(e),
            TvError::StructureMismatch(_) => None,
        }
    }
}

impl From<WellFormedError> for TvError {
    fn from(e: WellFormedError) -> Self {
        TvError::IllFormed(e)
    }
}

/// The outcome for one changed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteVerdict {
    /// Statement index.
    pub index: usize,
    /// Whether the change was justified.
    pub validated: bool,
    /// Human-readable justification or rejection reason.
    pub reason: String,
}

/// The outcome of validating one procedure pair.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Per-changed-site verdicts.
    pub sites: Vec<SiteVerdict>,
    /// Total validation time (fact computation + VCs).
    pub elapsed: Duration,
}

impl ValidationReport {
    /// Whether every change was validated.
    pub fn validated(&self) -> bool {
        self.sites.iter().all(|s| s.validated)
    }

    /// The rejected sites.
    pub fn rejections(&self) -> Vec<&SiteVerdict> {
        self.sites.iter().filter(|s| !s.validated).collect()
    }
}

/// Validates that `new` is a semantics-preserving transformation of
/// `orig`, assuming single-statement rewrites.
///
/// # Errors
///
/// Returns [`TvError`] if the procedures are ill-formed or differ
/// structurally. A *rejected* change is reported in the
/// [`ValidationReport`], not as an error.
pub fn validate_proc(orig: &Proc, new: &Proc) -> Result<ValidationReport, TvError> {
    let start = Instant::now();
    if orig.name != new.name || orig.param != new.param {
        return Err(TvError::StructureMismatch("name or parameter".into()));
    }
    if orig.len() != new.len() {
        return Err(TvError::StructureMismatch(format!(
            "lengths {} vs {}",
            orig.len(),
            new.len()
        )));
    }
    let cfg_orig = Cfg::new(orig)?;
    let cfg_new = Cfg::new(new)?;
    let facts = value_facts(orig, &cfg_orig);
    let live_new = live_vars(new, &cfg_new);
    let mut sites = Vec::new();
    for (i, (s, s2)) in orig.stmts.iter().zip(&new.stmts).enumerate() {
        if s == s2 {
            continue;
        }
        let verdict = validate_site(orig, &cfg_new, &facts[i], &live_new, i, s, s2);
        sites.push(verdict);
    }
    Ok(ValidationReport {
        sites,
        elapsed: start.elapsed(),
    })
}

fn validate_site(
    orig: &Proc,
    cfg_new: &Cfg,
    facts: &BTreeSet<Fact>,
    live_new: &[BTreeSet<cobalt_il::Var>],
    index: usize,
    s: &Stmt,
    s2: &Stmt,
) -> SiteVerdict {
    let reject = |reason: String| SiteVerdict {
        index,
        validated: false,
        reason,
    };
    let accept = |reason: String| SiteVerdict {
        index,
        validated: true,
        reason,
    };
    match (s, s2) {
        // Removal: x := e ⇒ skip. Valid if the assignment was a no-op
        // (the facts prove e = x, e.g. a self-assignment) or x is dead.
        (Stmt::Assign(Lhs::Var(x), e), Stmt::Skip) => {
            if value_vc(facts, e, &Expr::Base(BaseExpr::Var(x.clone()))) == Some(true) {
                return accept(format!("`{x} := {e}` was a no-op"));
            }
            let live_after = cfg_new
                .successors(index)
                .iter()
                .any(|&m| live_new[m].contains(x));
            if live_after {
                reject(format!("removed assignment to live variable `{x}`"))
            } else {
                accept(format!("`{x}` is dead after the removal"))
            }
        }
        // Insertion: skip ⇒ x := e.
        (Stmt::Skip, Stmt::Assign(Lhs::Var(x), e)) => {
            let cfg_orig = match Cfg::new(orig) {
                Ok(c) => c,
                Err(e) => return reject(format!("original CFG: {e}")),
            };
            if anticipated(orig, &cfg_orig, index, x, e) {
                accept(format!("`{x} := {e}` is anticipated on every path"))
            } else {
                reject(format!("inserted `{x} := {e}` is not anticipated"))
            }
        }
        // Branch retargeting.
        (
            Stmt::If {
                cond: c1,
                then_target: t1,
                else_target: e1,
            },
            Stmt::If {
                cond: c2,
                then_target: t2,
                else_target: e2,
            },
        ) => {
            if c1 != c2 {
                return reject("branch condition changed".into());
            }
            let constant = match c1 {
                BaseExpr::Const(c) => Some(*c),
                BaseExpr::Var(v) => facts.iter().find_map(|f| match f {
                    Fact::VarConst(x, c) if x == v => Some(*c),
                    _ => None,
                }),
            };
            match constant {
                Some(c) if c != 0 && t2 == e2 && t2 == t1 => {
                    accept(format!("condition is constant {c} ≠ 0"))
                }
                Some(0) if t2 == e2 && t2 == e1 => accept("condition is constant 0".into()),
                _ => reject("branch targets changed without a constant condition".into()),
            }
        }
        // Value rewrite: x := e ⇒ x := e'.
        (Stmt::Assign(Lhs::Var(x), e), Stmt::Assign(Lhs::Var(x2), e2)) => {
            if x != x2 {
                return reject("assignment destination changed".into());
            }
            match value_vc(facts, e, e2) {
                Some(true) => accept(format!("facts prove `{e}` = `{e2}`")),
                Some(false) => reject(format!("cannot prove `{e}` = `{e2}`")),
                None => reject(format!("unsupported expression forms `{e}`, `{e2}`")),
            }
        }
        _ => reject(format!("unsupported rewrite `{s}` ⇒ `{s2}`")),
    }
}

/// Discharges the VC "under the node's facts, `e` and `e2` evaluate to
/// the same value" with the automatic theorem prover. Returns `None`
/// for expression forms outside the encodable fragment.
fn value_vc(facts: &BTreeSet<Fact>, e: &Expr, e2: &Expr) -> Option<bool> {
    let mut solver = Solver::new();
    let mut enc = VcEnc::new(&mut solver);
    let mut hyps = Vec::new();
    for f in facts {
        match f {
            Fact::VarConst(x, c) => {
                let vx = enc.var_value(x);
                let iv = enc.intval_lit(*c);
                hyps.push(Formula::Eq(vx, iv));
            }
            Fact::VarVar(x, y) => {
                let vx = enc.var_value(x);
                let vy = enc.var_value(y);
                hyps.push(Formula::Eq(vx, vy));
            }
            Fact::VarExpr(x, rhs) => {
                let vx = enc.var_value(x);
                if let Some(ve) = enc.expr_value(rhs) {
                    hyps.push(Formula::Eq(vx, ve));
                }
            }
        }
    }
    let v1 = enc.expr_value(e)?;
    let v2 = enc.expr_value(e2)?;
    let task = ProofTask {
        hypotheses: hyps,
        goal: Formula::Eq(v1, v2),
    };
    Some(solver.prove(&task).is_proved())
}

/// A small encoder for concrete-program VCs: every concrete variable
/// gets its own location constructor, so distinctness is structural.
struct VcEnc<'a> {
    s: &'a mut Solver,
    store: TermId,
}

impl<'a> VcEnc<'a> {
    fn new(s: &'a mut Solver) -> Self {
        let store = s.bank.app0("store");
        VcEnc { s, store }
    }

    fn var_value(&mut self, x: &cobalt_il::Var) -> TermId {
        let loc = self.s.bank.constructor(&format!("loc${x}"));
        let loc = self.s.bank.app(loc, Vec::new());
        self.s.select(self.store, loc)
    }

    fn intval_lit(&mut self, c: i64) -> TermId {
        let iv = self.s.bank.constructor("intval");
        let lit = self.s.bank.int(c);
        self.s.bank.app(iv, vec![lit])
    }

    fn expr_value(&mut self, e: &Expr) -> Option<TermId> {
        match e {
            Expr::Base(BaseExpr::Var(x)) => Some(self.var_value(x)),
            Expr::Base(BaseExpr::Const(c)) => Some(self.intval_lit(*c)),
            Expr::Op(op, args) => {
                // Ground all-constant applications with the shared
                // evaluator, so folded arithmetic validates.
                let const_args: Option<Vec<i64>> = args
                    .iter()
                    .map(|a| match a {
                        BaseExpr::Const(c) => Some(*c),
                        BaseExpr::Var(_) => None,
                    })
                    .collect();
                if let Some(v) = const_args.and_then(|cs| cobalt_il::eval_op(*op, &cs)) {
                    return Some(self.intval_lit(v));
                }
                let opc = self.s.bank.constructor(&format!("op${op:?}"));
                let mut ts = vec![self.s.bank.app(opc, Vec::new())];
                for a in args {
                    ts.push(match a {
                        BaseExpr::Var(x) => self.var_value(x),
                        BaseExpr::Const(c) => self.intval_lit(*c),
                    });
                }
                let f = self.s.bank.sym(&format!("opval{}", args.len()));
                let r = self.s.bank.app(f, ts);
                let iv = self.s.bank.constructor("intval");
                Some(self.s.bank.app(iv, vec![r]))
            }
            // Dereferences and address-taking are outside the VC
            // fragment; equal syntax was already handled by the caller.
            Expr::Deref(_) | Expr::AddrOf(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_il::parse_program;

    fn procs(a: &str, b: &str) -> (Proc, Proc) {
        let pa = parse_program(a).unwrap().main().unwrap().clone();
        let pb = parse_program(b).unwrap().main().unwrap().clone();
        (pa, pb)
    }

    #[test]
    fn validates_constant_propagation() {
        let (a, b) = procs(
            "proc main(x) { a := 2; c := a; return c; }",
            "proc main(x) { a := 2; c := 2; return c; }",
        );
        let r = validate_proc(&a, &b).unwrap();
        assert!(r.validated(), "{:?}", r.rejections());
    }

    #[test]
    fn rejects_wrong_constant() {
        let (a, b) = procs(
            "proc main(x) { a := 2; c := a; return c; }",
            "proc main(x) { a := 2; c := 3; return c; }",
        );
        let r = validate_proc(&a, &b).unwrap();
        assert!(!r.validated());
    }

    #[test]
    fn validates_copy_propagation_and_cse() {
        let (a, b) = procs(
            "proc main(x) { a := x; b := a; c := x + 1; d := x + 1; return d; }",
            "proc main(x) { a := x; b := x; c := x + 1; d := c; return d; }",
        );
        let r = validate_proc(&a, &b).unwrap();
        assert!(r.validated(), "{:?}", r.rejections());
    }

    #[test]
    fn validates_dead_code_removal_but_rejects_live_removal() {
        let (a, b) = procs(
            "proc main(x) { a := 1; a := x; return a; }",
            "proc main(x) { skip; a := x; return a; }",
        );
        assert!(validate_proc(&a, &b).unwrap().validated());
        let (a, b) = procs(
            "proc main(x) { a := 1; b := a; return b; }",
            "proc main(x) { skip; b := a; return b; }",
        );
        assert!(!validate_proc(&a, &b).unwrap().validated());
    }

    #[test]
    fn validates_pre_insertion() {
        let (a, b) = procs(
            "proc main(x) { skip; a := x + 1; return a; }",
            "proc main(x) { a := x + 1; a := x + 1; return a; }",
        );
        let r = validate_proc(&a, &b).unwrap();
        assert!(r.validated(), "{:?}", r.rejections());
        // Insertion without anticipation is rejected.
        let (a, b) = procs(
            "proc main(x) { skip; return x; }",
            "proc main(x) { a := x + 1; return x; }",
        );
        assert!(!validate_proc(&a, &b).unwrap().validated());
    }

    #[test]
    fn validates_branch_folding() {
        let (a, b) = procs(
            "proc main(x) { if 1 goto 2 else 1; skip; return x; }",
            "proc main(x) { if 1 goto 2 else 2; skip; return x; }",
        );
        assert!(validate_proc(&a, &b).unwrap().validated());
        // Retargeting a variable branch is rejected.
        let (a, b) = procs(
            "proc main(x) { if x goto 2 else 1; skip; return x; }",
            "proc main(x) { if x goto 2 else 2; skip; return x; }",
        );
        assert!(!validate_proc(&a, &b).unwrap().validated());
    }

    #[test]
    fn catches_the_buggy_load_elimination() {
        // The §6 miscompilation: translation validation also catches it
        // (per run), while the Cobalt checker rejects the optimization
        // once and for all.
        let (a, b) = procs(
            "proc main(x) {
                decl y; decl p; decl a; decl b;
                p := &y; y := 7; a := *p; y := 9; b := *p;
                return b;
             }",
            "proc main(x) {
                decl y; decl p; decl a; decl b;
                p := &y; y := 7; a := *p; y := 9; b := a;
                return b;
             }",
        );
        let r = validate_proc(&a, &b).unwrap();
        assert!(!r.validated());
    }

    #[test]
    fn structure_mismatch_is_an_error() {
        let (a, b) = procs(
            "proc main(x) { skip; return x; }",
            "proc main(x) { return x; }",
        );
        assert!(matches!(
            validate_proc(&a, &b),
            Err(TvError::StructureMismatch(_))
        ));
    }

    #[test]
    fn validates_whole_optimizer_output() {
        use cobalt_dsl::LabelEnv;
        use cobalt_engine::Engine;
        let prog = parse_program(
            "proc main(x) {
                a := 2;
                b := a;
                c := b + 1;
                d := b + 1;
                d := d;
                return d;
             }",
        )
        .unwrap();
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, n) = engine
            .optimize_program(&prog, &[], &cobalt_opts::default_pipeline(), 1)
            .unwrap();
        assert!(n > 0);
        // Validate each round's output against its input would be the
        // honest protocol; with one round this is direct.
        let r = validate_proc(prog.main().unwrap(), optimized.main().unwrap()).unwrap();
        assert!(r.validated(), "{:?}", r.rejections());
    }
}
