//! Concrete dataflow facts for translation validation.
//!
//! Unlike the Cobalt checker — which proves an optimization sound once
//! and for all over *symbolic* programs — a translation validator must
//! re-derive, for every compiled procedure, enough facts about the
//! *concrete* program to justify each rewrite (Necula 2000; paper §1,
//! §8). This module computes those facts:
//!
//! * forward **value equalities**: `x = c`, `x = y`, `x = e` holding on
//!   every path into a node;
//! * backward **liveness**: whether a variable's value may be observed
//!   after a node;
//! * backward **anticipated assignments**: whether `x := e` is executed
//!   on every path from a node before `x` is used or `e` changes.

use cobalt_il::{BaseExpr, Cfg, Expr, Lhs, Proc, Stmt, Var};
use std::collections::{BTreeSet, HashMap};

/// A value-equality fact about the state before a node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fact {
    /// `x` holds the constant.
    VarConst(Var, i64),
    /// `x` and `y` hold the same value.
    VarVar(Var, Var),
    /// `x` holds the current value of the expression.
    VarExpr(Var, Expr),
}

type FactSet = BTreeSet<Fact>;

/// Whether executing `s` may change the value of any variable `e`
/// reads, or the target of a dereference in `e` (conservative).
fn stmt_disturbs_expr(s: &Stmt, e: &Expr) -> bool {
    if e.has_deref() {
        // Conservative: pointer targets may be changed by any write.
        return !matches!(s, Stmt::Skip | Stmt::If { .. } | Stmt::Return(_) | Stmt::Decl(_));
    }
    match s {
        Stmt::Assign(Lhs::Deref(_), _) | Stmt::Call { .. } => true,
        _ => match s.syntactic_def() {
            Some(d) => e.read_vars().contains(&d),
            None => false,
        },
    }
}

fn stmt_defines(s: &Stmt, x: &Var) -> bool {
    match s {
        Stmt::Assign(Lhs::Deref(_), _) | Stmt::Call { .. } => true,
        _ => s.syntactic_def() == Some(x),
    }
}

fn kill_and_gen(s: &Stmt, facts: &FactSet) -> FactSet {
    let mut out: FactSet = facts
        .iter()
        .filter(|f| match f {
            Fact::VarConst(x, _) => !stmt_defines(s, x),
            Fact::VarVar(x, y) => !stmt_defines(s, x) && !stmt_defines(s, y),
            Fact::VarExpr(x, e) => !stmt_defines(s, x) && !stmt_disturbs_expr(s, e),
        })
        .cloned()
        .collect();
    if let Stmt::Assign(Lhs::Var(x), e) = s {
        match e {
            Expr::Base(BaseExpr::Const(c)) => {
                out.insert(Fact::VarConst(x.clone(), *c));
            }
            Expr::Base(BaseExpr::Var(y)) => {
                if x != y {
                    out.insert(Fact::VarVar(x.clone(), y.clone()));
                }
            }
            e => {
                if !e.read_vars().contains(&x) && !stmt_disturbs_expr(s, e) {
                    out.insert(Fact::VarExpr(x.clone(), e.clone()));
                }
            }
        }
    }
    out
}

/// Computes the value-equality facts holding before every node.
pub fn value_facts(proc: &Proc, cfg: &Cfg) -> Vec<FactSet> {
    let n = proc.len();
    // Universe: facts generated anywhere.
    let mut universe = FactSet::new();
    for s in &proc.stmts {
        universe.extend(kill_and_gen(s, &FactSet::new()));
    }
    let mut ins: Vec<FactSet> = vec![universe.clone(); n];
    ins[cfg.entry()] = FactSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            let in_fact = if i == cfg.entry() {
                FactSet::new()
            } else {
                let mut preds = cfg.predecessors(i).iter();
                match preds.next() {
                    None => FactSet::new(),
                    Some(&p0) => {
                        let mut acc = kill_and_gen(&proc.stmts[p0], &ins[p0]);
                        for &p in preds {
                            let out = kill_and_gen(&proc.stmts[p], &ins[p]);
                            acc = acc.intersection(&out).cloned().collect();
                        }
                        acc
                    }
                }
            };
            if in_fact != ins[i] {
                ins[i] = in_fact;
                changed = true;
            }
        }
    }
    ins
}

/// Computes, for each node, the variables that may be *used* at or
/// after it (backward liveness, conservative about pointers and calls).
pub fn live_vars(proc: &Proc, cfg: &Cfg) -> Vec<BTreeSet<Var>> {
    let n = proc.len();
    let all_vars: BTreeSet<Var> = proc.variables().into_iter().collect();
    let mut live: Vec<BTreeSet<Var>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let s = &proc.stmts[i];
            let mut out = BTreeSet::new();
            for &m in cfg.successors(i) {
                out.extend(live[m].iter().cloned());
            }
            let mut inset: BTreeSet<Var> = out;
            if let Some(d) = s.syntactic_def() {
                inset.remove(d);
            }
            // Pointer reads and calls may observe anything.
            let reads_everything = matches!(s, Stmt::Call { .. })
                || matches!(s, Stmt::Assign(_, e) if e.has_deref());
            if reads_everything {
                inset.extend(all_vars.iter().cloned());
            }
            for v in s.read_vars() {
                inset.insert(v.clone());
            }
            if inset != live[i] {
                live[i] = inset;
                changed = true;
            }
        }
    }
    live
}

/// Whether on every path from `start` the assignment `x := e` executes
/// before `x` is used or the value of `e` is disturbed. Used to
/// validate insertions (PRE code duplication).
pub fn anticipated(proc: &Proc, cfg: &Cfg, start: usize, x: &Var, e: &Expr) -> bool {
    // anticipated(n) = stmt(n) is `x := e` and x unused at n
    //                ∨ (n innocuous for x, e) ∧ all succ anticipated.
    let n = proc.len();
    let mut ant = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            let s = &proc.stmts[i];
            let is_enabling = matches!(s, Stmt::Assign(Lhs::Var(w), rhs) if w == x && rhs == e)
                && !s.read_vars().contains(&x);
            let innocuous = !stmt_disturbs_expr(s, e)
                && !stmt_defines(s, x)
                && !s.read_vars().contains(&x)
                && !matches!(s, Stmt::Return(_));
            let succs = cfg.successors(i);
            let val =
                is_enabling || (innocuous && !succs.is_empty() && succs.iter().all(|&m| ant[m]));
            if val != ant[i] {
                ant[i] = val;
                changed = true;
            }
        }
    }
    ant.get(start).copied().unwrap_or(false)
}

/// A map from variables to known facts, for quick lookup during VC
/// construction.
pub fn facts_about(facts: &FactSet) -> HashMap<&Var, Vec<&Fact>> {
    let mut map: HashMap<&Var, Vec<&Fact>> = HashMap::new();
    for f in facts {
        let v = match f {
            Fact::VarConst(x, _) | Fact::VarVar(x, _) | Fact::VarExpr(x, _) => x,
        };
        map.entry(v).or_default().push(f);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobalt_il::parse_program;

    fn setup(src: &str) -> (Proc, Cfg) {
        let prog = parse_program(src).unwrap();
        let p = prog.main().unwrap().clone();
        let cfg = Cfg::new(&p).unwrap();
        (p, cfg)
    }

    #[test]
    fn const_facts_flow_and_kill() {
        let (p, cfg) = setup("proc main(x) { a := 2; b := a; a := x; c := a; return c; }");
        let facts = value_facts(&p, &cfg);
        assert!(facts[1].contains(&Fact::VarConst(Var::new("a"), 2)));
        // After a := x the constant fact is gone, the copy fact appears.
        assert!(!facts[3].contains(&Fact::VarConst(Var::new("a"), 2)));
        assert!(facts[3].contains(&Fact::VarVar(Var::new("a"), Var::new("x"))));
        // b = a survives? a was redefined at 2: killed.
        assert!(!facts[3].contains(&Fact::VarVar(Var::new("b"), Var::new("a"))));
    }

    #[test]
    fn facts_intersect_at_merges() {
        let (p, cfg) = setup(
            "proc main(x) {
                if x goto 2 else 1;
                a := 2;
                c := a;
                return c;
             }",
        );
        let facts = value_facts(&p, &cfg);
        assert!(!facts[2].contains(&Fact::VarConst(Var::new("a"), 2)));
    }

    #[test]
    fn expr_facts_respect_operand_kills() {
        let (p, cfg) = setup("proc main(x) { a := x + 1; x := 2; b := x + 1; return b; }");
        let facts = value_facts(&p, &cfg);
        assert!(facts[1].contains(&Fact::VarExpr(
            Var::new("a"),
            cobalt_il::parse_expr("x + 1").unwrap()
        )));
        assert!(!facts[2].iter().any(|f| matches!(f, Fact::VarExpr(..))));
    }

    #[test]
    fn liveness_basics() {
        let (p, cfg) = setup("proc main(x) { a := 1; b := a; return b; }");
        let live = live_vars(&p, &cfg);
        assert!(live[1].contains(&Var::new("a")));
        assert!(!live[2].contains(&Var::new("a")));
        assert!(live[2].contains(&Var::new("b")));
    }

    #[test]
    fn liveness_conservative_about_pointers() {
        let (p, cfg) = setup(
            "proc main(x) { decl y; decl p; y := 1; b := *p; return b; }",
        );
        let live = live_vars(&p, &cfg);
        // b := *p may read y: y live before node 3.
        assert!(live[3].contains(&Var::new("y")));
    }

    #[test]
    fn anticipation_for_insertion() {
        let (p, cfg) = setup(
            "proc main(x) {
                skip;
                a := x + 1;
                return a;
             }",
        );
        let e = cobalt_il::parse_expr("x + 1").unwrap();
        assert!(anticipated(&p, &cfg, 0, &Var::new("a"), &e));
        // Not anticipated if a path avoids the assignment.
        let (p2, cfg2) = setup(
            "proc main(x) {
                skip;
                if x goto 3 else 2;
                a := x + 1;
                return x;
             }",
        );
        assert!(!anticipated(&p2, &cfg2, 0, &Var::new("a"), &e));
    }
}
