//! Experiment E7: empirical validation of Theorems 1 and 2 — proven
//! optimizations never change the observable behaviour of randomly
//! generated programs, and (noninterference, §4.1) applying *any
//! subset* of a pattern's legal transformations is equally safe.

use cobalt::dsl::LabelEnv;
use cobalt::engine::{AnalyzedProc, Engine};
use cobalt::il::{generate, EvalError, GenConfig, Interp, Program, Value};
use cobalt_support::prop::Config;
use cobalt_support::props;

/// Runs both programs on `arg`; panics if the original returns a value
/// and the transformed one disagrees (the paper's notion of semantic
/// equivalence: whenever `main(v1)` returns `v2`, it still does).
fn check_equivalent(orig: &Program, new: &Program, arg: i64, context: &str) {
    let a = Interp::new(orig).with_fuel(200_000).run(arg);
    match a {
        Ok(v) => {
            let b = Interp::new(new).with_fuel(400_000).run(arg);
            match b {
                Ok(w) => assert_eq!(v, w, "{context}: result changed for arg {arg}"),
                Err(e) => panic!("{context}: original returned {v}, transformed failed: {e}"),
            }
        }
        Err(EvalError::Stuck { .. }) | Err(EvalError::OutOfFuel) => {}
        Err(other) => panic!("{context}: unexpected {other}"),
    }
}

props! {
    config = Config::with_cases(48);

    fn suite_preserves_semantics_on_random_programs(seed in 0u64..5_000, arg in -4i64..10) {
        let prog = generate(&GenConfig::sized(30, seed));
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, _) = engine
            .optimize_program(
                &prog,
                &cobalt::opts::all_analyses(),
                &cobalt::opts::default_pipeline(),
                3,
            )
            .unwrap();
        // The full registry (PRE included) is still sound when
        // round-robined — only unprofitable; exercise it too.
        let (all_opt, _) = engine
            .optimize_program(
                &prog,
                &cobalt::opts::all_analyses(),
                &cobalt::opts::all_optimizations(),
                2,
            )
            .unwrap();
        check_equivalent(&prog, &optimized, arg, "default pipeline");
        check_equivalent(&prog, &all_opt, arg, "full registry");
    }

    fn random_subsets_of_legal_sites_are_safe(
        seed in 0u64..2_000,
        mask in 0usize..256,
        arg in -2i64..6,
    ) {
        // Noninterference (paper §4.1): every subset Δ' ⊆ Δ yields a
        // semantically equivalent program.
        let prog = generate(&GenConfig::sized(24, seed));
        let engine = Engine::new(LabelEnv::standard());
        for opt in [cobalt::opts::const_prop(), cobalt::opts::dae(), cobalt::opts::cse()] {
            let main = prog.main().unwrap().clone();
            let ap = AnalyzedProc::new(main).unwrap();
            let delta = engine.legal_sites(&ap, &opt).unwrap();
            if delta.is_empty() {
                continue;
            }
            let subset: Vec<_> = delta
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << (i % 8)) != 0)
                .map(|(_, s)| s.clone())
                .collect();
            let new_main = engine.apply_sites(&ap, &opt, &subset).unwrap();
            let new_prog = prog.with_proc_replaced(new_main);
            check_equivalent(&prog, &new_prog, arg, &format!("subset of {}", opt.name));
        }
    }

    fn recursive_dae_preserves_semantics(seed in 0u64..3_000, arg in -3i64..8) {
        // The §5.2 self-composition feature, exercised end to end.
        let prog = generate(&GenConfig::sized(24, seed));
        let engine = Engine::new(LabelEnv::standard());
        let main = prog.main().unwrap();
        let (optimized, _) =
            cobalt::engine::apply_recursive(&engine, main, &cobalt::opts::dae()).unwrap();
        let new_prog = prog.with_proc_replaced(optimized);
        check_equivalent(&prog, &new_prog, arg, "recursive DAE");
    }

    fn pre_pipeline_preserves_semantics(seed in 0u64..3_000, arg in -3i64..8) {
        let prog = generate(&GenConfig::sized(26, seed));
        let engine = Engine::new(LabelEnv::standard());
        let (optimized, _) = engine
            .optimize_program(&prog, &[], &cobalt::opts::pre_pipeline(), 3)
            .unwrap();
        check_equivalent(&prog, &optimized, arg, "PRE pipeline");
    }
}

#[test]
fn buggy_variant_fails_differentially_where_sound_suite_does_not() {
    // Sanity: the differential harness is strong enough to catch the §6
    // bug on its known counterexample.
    let prog = cobalt::opts::buggy::counterexample_program();
    let engine = Engine::new(LabelEnv::standard());
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (bad, _) = engine
        .apply(&ap, &cobalt::opts::buggy::load_elim_no_alias())
        .unwrap();
    let bad_prog = Program::new(vec![bad]);
    let orig = Interp::new(&prog).run(0).unwrap();
    let new = Interp::new(&bad_prog).run(0).unwrap();
    assert_ne!(orig, new);
    assert_eq!(orig, Value::Int(9));
}
