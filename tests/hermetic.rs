//! Guard for the hermetic-build policy (DESIGN.md): no workspace
//! manifest may declare a dependency on an external registry. Every
//! dependency must be an in-tree `path` dependency or a
//! `workspace = true` reference to one. This is what keeps
//! `cargo build --release --offline` working with zero network access
//! and every randomized artifact reproducible by seed.

use std::path::{Path, PathBuf};

/// Collects the root manifest plus every `crates/*/Cargo.toml`.
fn workspace_manifests() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut manifests = vec![root.join("Cargo.toml")];
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir).expect("crates/ must exist") {
        let manifest = entry.expect("readable dir entry").path().join("Cargo.toml");
        if manifest.is_file() {
            manifests.push(manifest);
        }
    }
    assert!(
        manifests.len() >= 9,
        "expected the root and at least 8 member manifests, found {}",
        manifests.len()
    );
    manifests
}

/// True for section headers whose entries declare dependencies:
/// `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.'...'.dependencies]`, and the
/// dotted single-dependency form `[dependencies.foo]`.
fn is_dependency_section(header: &str) -> bool {
    header.ends_with("dependencies") || header.contains("dependencies.")
}

/// Scans one manifest, returning `"file: line"` strings for every
/// dependency entry that is neither a path dependency nor a workspace
/// reference. The scan is line-based (the workspace uses inline tables
/// only) and intentionally errs toward flagging anything it cannot
/// positively identify as hermetic.
fn violations_in(manifest: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(manifest)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest.display()));
    let name = manifest
        .strip_prefix(Path::new(env!("CARGO_MANIFEST_DIR")))
        .unwrap_or(manifest)
        .display()
        .to_string();
    let mut violations = Vec::new();
    let mut in_dep_section = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let header = line.trim_matches(|c| c == '[' || c == ']');
            in_dep_section = is_dependency_section(header);
            // `[dependencies.foo]` with a following `version = ...` and
            // no `path = ...` would need multi-line tracking; forbid
            // the form outright to keep the guard simple and sound.
            if header.contains("dependencies.") {
                violations.push(format!(
                    "{name}:{}: dotted dependency table `[{header}]` — use an \
                     inline table with a `path` key instead",
                    lineno + 1
                ));
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        let hermetic = value.contains("path =")
            || value.contains("path=")
            || (key.ends_with(".workspace") && value == "true")
            || value.contains("workspace = true")
            || value.contains("workspace=true");
        if !hermetic {
            violations.push(format!(
                "{name}:{}: `{line}` is not a path or workspace dependency",
                lineno + 1
            ));
        }
    }
    violations
}

#[test]
fn no_external_registry_dependencies() {
    let mut all = Vec::new();
    for manifest in workspace_manifests() {
        all.extend(violations_in(&manifest));
    }
    assert!(
        all.is_empty(),
        "external (non-path) dependencies violate the hermetic-build \
         policy — vendor the code into a workspace crate instead \
         (see DESIGN.md):\n  {}",
        all.join("\n  ")
    );
}

#[test]
fn guard_catches_registry_dependencies() {
    // Self-test of the scanner on a manifest snippet that reintroduces
    // every forbidden form.
    let dir = std::env::temp_dir().join("cobalt-hermetic-guard-selftest");
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("Cargo.toml");
    std::fs::write(
        &manifest,
        r#"[package]
name = "bad"

[dependencies]
rand = "0.8"
serde = { version = "1", features = ["derive"] }
good = { path = "../good" }
also-good.workspace = true

[dev-dependencies]
proptest = "1"

[dependencies.criterion]
version = "0.5"
"#,
    )
    .unwrap();
    let violations = violations_in(&manifest);
    std::fs::remove_file(&manifest).ok();
    let text = violations.join("\n");
    for bad in ["rand", "serde", "proptest", "criterion"] {
        assert!(text.contains(bad), "guard missed `{bad}`:\n{text}");
    }
    assert!(
        !text.contains("good"),
        "guard flagged a hermetic dependency:\n{text}"
    );
}
