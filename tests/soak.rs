//! Long-running differential soak test, ignored by default.
//!
//! Run with:
//!
//! ```sh
//! cargo test --release --test soak -- --ignored --nocapture
//! ```
//!
//! Sweeps thousands of generated programs through the whole verified
//! suite (and the recursive-DAE self-composition) checking semantic
//! preservation on several inputs each — the heavyweight version of
//! experiment E7.

use cobalt::dsl::LabelEnv;
use cobalt::engine::Engine;
use cobalt::il::{generate, EvalError, GenConfig, Interp};

#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn differential_soak() {
    let engine = Engine::new(LabelEnv::standard());
    let analyses = cobalt::opts::all_analyses();
    let opts = cobalt::opts::default_pipeline();
    let mut runs = 0u64;
    let mut checked = 0u64;
    for seed in 0..4_000u64 {
        let prog = generate(&GenConfig::sized(36, seed));
        let (optimized, _) = engine
            .optimize_program(&prog, &analyses, &opts, 3)
            .unwrap();
        let (rec, _) = cobalt::engine::apply_recursive(
            &engine,
            optimized.main().unwrap(),
            &cobalt::opts::dae(),
        )
        .unwrap();
        let final_prog = optimized.with_proc_replaced(rec);
        for arg in [-7, -1, 0, 1, 2, 9] {
            runs += 1;
            match Interp::new(&prog).with_fuel(200_000).run(arg) {
                Ok(v) => {
                    checked += 1;
                    let w = Interp::new(&final_prog)
                        .with_fuel(400_000)
                        .run(arg)
                        .unwrap_or_else(|e| {
                            panic!("seed {seed} arg {arg}: transformed failed: {e}")
                        });
                    assert_eq!(v, w, "seed {seed} arg {arg}");
                }
                Err(EvalError::Stuck { .. }) | Err(EvalError::OutOfFuel) => {}
                Err(other) => panic!("seed {seed}: {other}"),
            }
        }
    }
    println!("soak: {checked}/{runs} runs produced values; all preserved");
    assert!(checked > runs / 3, "generator health check");
}
