//! Long-running differential soak test, ignored by default.
//!
//! Run with:
//!
//! ```sh
//! cargo test --release --test soak -- --ignored --nocapture
//! ```
//!
//! Sweeps thousands of generated programs through the whole verified
//! suite (and the recursive-DAE self-composition) checking semantic
//! preservation on several inputs each — the heavyweight version of
//! experiment E7.

use cobalt::dsl::LabelEnv;
use cobalt::engine::{Engine, OptimizeSession};
use cobalt::il::{generate, pretty_program, EvalError, GenConfig, Interp, Program};
use cobalt::serve::{request_with_retry, ClientConfig, Request, RequestOp};
use cobalt::verify::{ResumeMode, SemanticMeanings, Session, Verifier};
use cobalt_support::rng::Rng;
use std::collections::HashMap;
use std::time::Duration;

#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn differential_soak() {
    let engine = Engine::new(LabelEnv::standard());
    let analyses = cobalt::opts::all_analyses();
    let opts = cobalt::opts::default_pipeline();
    let mut runs = 0u64;
    let mut checked = 0u64;
    for seed in 0..4_000u64 {
        let prog = generate(&GenConfig::sized(36, seed));
        let (optimized, _) = engine
            .optimize_program(&prog, &analyses, &opts, 3)
            .unwrap();
        let (rec, _) = cobalt::engine::apply_recursive(
            &engine,
            optimized.main().unwrap(),
            &cobalt::opts::dae(),
        )
        .unwrap();
        let final_prog = optimized.with_proc_replaced(rec);
        for arg in [-7, -1, 0, 1, 2, 9] {
            runs += 1;
            match Interp::new(&prog).with_fuel(200_000).run(arg) {
                Ok(v) => {
                    checked += 1;
                    let w = Interp::new(&final_prog)
                        .with_fuel(400_000)
                        .run(arg)
                        .unwrap_or_else(|e| {
                            panic!("seed {seed} arg {arg}: transformed failed: {e}")
                        });
                    assert_eq!(v, w, "seed {seed} arg {arg}");
                }
                Err(EvalError::Stuck { .. }) | Err(EvalError::OutOfFuel) => {}
                Err(other) => panic!("seed {seed}: {other}"),
            }
        }
    }
    println!("soak: {checked}/{runs} runs produced values; all preserved");
    assert!(checked > runs / 3, "generator health check");
}

/// Crash/resume soak (ISSUE 4): hundreds of rounds of killing a
/// verification session at a random point — sometimes also tearing or
/// bit-flipping the journal tail, as a dying machine would — and
/// resuming. Every resume must load without panicking, never trust a
/// damaged record, and finish the suite; once a round completes
/// cleanly, the next full run must be entirely cached.
#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn journal_crash_resume_soak() {
    let path = std::env::temp_dir().join(format!(
        "cobalt_soak_journal_{}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let registry = cobalt::opts::all_optimizations();
    let verifier = || Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let mut rng = Rng::seed_from_u64(0xC0BA17);
    let mut kills = 0u32;
    let mut tears = 0u32;
    let mut flips = 0u32;

    for round in 0..300u32 {
        // Run the suite, dying after a random number of rules.
        let survive = rng.gen_range(0..=registry.len());
        let mut session = Session::with_journal(verifier(), &path, ResumeMode::Resume)
            .unwrap_or_else(|e| panic!("round {round}: journal must always open: {e}"));
        for opt in &registry[..survive] {
            let report = session.verify_optimization(opt).unwrap();
            assert!(report.all_proved(), "round {round}: {}", report.summary());
        }
        if survive == registry.len() {
            session.finish();
            assert!(session.degraded().is_none(), "round {round}");
            // A completed journal warms the very next full run entirely.
            let mut warm = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
            for opt in &registry {
                let report = warm.verify_optimization(opt).unwrap();
                assert_eq!(
                    report.cached_count(),
                    report.outcomes.len(),
                    "round {round}: {}",
                    report.summary()
                );
            }
            warm.finish();
        } else {
            kills += 1;
            drop(session); // the kill: no finish, no compaction
        }

        // Occasionally damage the tail the way dying hardware does.
        let len = std::fs::metadata(&path).unwrap().len();
        match rng.gen_range(0u32..4) {
            0 if len > 4 => {
                tears += 1;
                let cut = len - rng.gen_range(1..=4.min(len));
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .unwrap()
                    .set_len(cut)
                    .unwrap();
            }
            1 if len > 0 => {
                flips += 1;
                let mut bytes = std::fs::read(&path).unwrap();
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1u8 << rng.gen_range(0u32..8);
                std::fs::write(&path, bytes).unwrap();
            }
            _ => {}
        }
    }
    println!("journal soak: 300 rounds, {kills} kills, {tears} tears, {flips} flips survived");
    std::fs::remove_file(&path).ok();
}

/// Engine journal crash/resume soak (ISSUE 7): rounds of an optimize
/// session killed after journaling a random prefix of the program's
/// procedures — sometimes with the journal tail torn or bit-flipped, as
/// a dying machine would leave it — then resumed at an alternating
/// worker count. Every resume must open without panicking, never trust
/// a damaged record (the checksummed loader discards it and the
/// procedure re-optimizes), and produce output byte-identical to the
/// clean baseline; a completed round warms the next full run entirely.
#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn engine_journal_crash_resume_soak() {
    let path = std::env::temp_dir().join(format!(
        "cobalt_soak_engine_{}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let prog = cobalt_bench::many_proc_program(10, 20, 0xC0BA17);
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    let engine = || Engine::new(LabelEnv::standard());
    let (baseline, base_report) =
        engine().optimize_program_resilient(&prog, &analyses, &passes, 3);
    assert!(!base_report.degraded(), "{:#?}", base_report.failures);
    let baseline = pretty_program(&baseline);
    let mut rng = Rng::seed_from_u64(0xC0BA17);
    let (mut kills, mut tears, mut flips) = (0u32, 0u32, 0u32);

    for round in 0..150u32 {
        let jobs = if round % 2 == 0 { 4 } else { 1 };
        let survive = rng.gen_range(0..=prog.procs.len());
        let mut session = OptimizeSession::new(engine())
            .with_jobs(jobs)
            .with_journal(&path, ResumeMode::Resume);
        assert!(
            session.is_journaled(),
            "round {round}: the journal must always reopen: {:?}",
            session.degraded()
        );
        if survive == prog.procs.len() {
            let (out, report) = session.optimize_program(&prog, &analyses, &passes, 3);
            session.finish();
            assert!(session.degraded().is_none(), "round {round}");
            assert_eq!(
                pretty_program(&out),
                baseline,
                "round {round}: resumed output must match the clean run"
            );
            assert_eq!(report.applied, base_report.applied, "round {round}");
            // A completed journal warms the very next full run entirely.
            let mut warm = OptimizeSession::new(engine())
                .with_jobs(5 - jobs)
                .with_journal(&path, ResumeMode::Resume);
            let (warm_out, warm_report) =
                warm.optimize_program(&prog, &analyses, &passes, 3);
            warm.finish();
            assert_eq!(
                warm_report.cached,
                prog.procs.len(),
                "round {round}: {}",
                warm_report.summary()
            );
            assert_eq!(pretty_program(&warm_out), baseline, "round {round}");
        } else {
            // The kill: journal only the first `survive` procedures,
            // then die without finish() — no compaction.
            kills += 1;
            let partial = Program::new(prog.procs[..survive].to_vec());
            session.optimize_program(&partial, &analyses, &passes, 3);
            drop(session);
        }

        // Occasionally damage the tail the way dying hardware does.
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        match rng.gen_range(0u32..4) {
            0 if len > 4 => {
                tears += 1;
                let cut = len - rng.gen_range(1..=4.min(len));
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .unwrap()
                    .set_len(cut)
                    .unwrap();
            }
            1 if len > 0 => {
                flips += 1;
                let mut bytes = std::fs::read(&path).unwrap();
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1u8 << rng.gen_range(0u32..8);
                std::fs::write(&path, bytes).unwrap();
            }
            _ => {}
        }
    }
    println!("engine soak: 150 rounds, {kills} kills, {tears} tears, {flips} flips survived");
    std::fs::remove_file(&path).ok();
}

/// Daemon chaos soak (ISSUE 9): rounds of a real `cobalt serve`
/// process under concurrent clients, ended half the time by SIGKILL
/// mid-traffic and half the time by a graceful in-band shutdown —
/// always restarting on the same proof-cache journal. The invariants:
/// every response that arrives parses and carries a consistent verdict
/// (a sound suite never reads unsound, the planted-bug suite never
/// reads proved, and proved payload bytes never drift between fresh,
/// cached, and coalesced serves); every graceful shutdown exits 0; and every
/// restart reopens the survivor journal without complaint.
#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn serve_chaos_soak() {
    const SOUND_A: &str = "forward soak_cp_a {
        stmt(Y := C) followed by !mayDef(Y)
        until X := Y => X := C
        with witness eta(Y) == C
    }";
    const SOUND_B: &str = "forward soak_cp_b {
        stmt(Y := C) followed by !mayDef(Y)
        until X := Y => X := C
        with witness eta(Y) == C
    }";
    // Guard on the wrong variable: genuinely unsound, must always be
    // rejected (exit 2), never proved.
    const UNSOUND: &str = "forward soak_bad {
        stmt(Y := C) followed by !mayDef(X)
        until X := Y => X := C
        with witness eta(Y) == C
    }";
    let suites: [(&str, u8); 3] = [(SOUND_A, 0), (SOUND_B, 0), (UNSOUND, 2)];

    let dir = std::env::temp_dir();
    let tag = format!("cobalt_soak_serve_{}", std::process::id());
    let journal = dir.join(format!("{tag}.cobj"));
    let port_file = dir.join(format!("{tag}.port"));
    std::fs::remove_file(&journal).ok();

    let mut rng = Rng::seed_from_u64(0x5E12E);
    let mut expected: HashMap<u8, String> = HashMap::new(); // suite idx → payload
    let (mut kills, mut drains, mut answered, mut refused) = (0u32, 0u32, 0u64, 0u64);

    for round in 0..20u32 {
        std::fs::remove_file(&port_file).ok();
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_cobalt"))
            .args([
                "serve",
                "--jobs",
                "2",
                "--port-file",
                port_file.to_str().unwrap(),
                "--journal",
                journal.to_str().unwrap(),
            ])
            // A small injected prover delay widens the kill window so
            // SIGKILL actually lands mid-proof sometimes.
            .env("COBALT_FAULTS", "checker.obligation:delay_ms@2")
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap();
        let addr = {
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                match std::fs::read_to_string(&port_file) {
                    Ok(s) if s.trim().ends_with(|c: char| c.is_ascii_digit()) => {
                        break s.trim().to_string()
                    }
                    _ => {}
                }
                assert!(std::time::Instant::now() < deadline, "round {round}: never bound");
                std::thread::sleep(Duration::from_millis(20));
            }
        };

        // Concurrent clients hammer a random mix of the three suites.
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let addr = addr.clone();
                let picks: Vec<u8> =
                    (0..3).map(|_| rng.gen_range(0u32..3) as u8).collect();
                std::thread::spawn(move || {
                    let cfg = ClientConfig {
                        addr,
                        io_timeout: Duration::from_secs(60),
                        retries: 1,
                        backoff_base: Duration::from_millis(5),
                        backoff_cap: Duration::from_millis(50),
                    };
                    let mut got: Vec<(u8, u8, String)> = Vec::new();
                    let mut lost = 0u64;
                    for (i, &pick) in picks.iter().enumerate() {
                        let req = Request {
                            id: format!("w{w}r{i}"),
                            op: RequestOp::Verify {
                                suite: Some(suites[pick as usize].0.to_string()),
                                include_buggy: false,
                            },
                        };
                        match request_with_retry(&cfg, &req) {
                            // A parsed response: the protocol survived
                            // whatever the chaos was doing.
                            Ok(resp) => got.push((pick, resp.exit, resp.output)),
                            // Connection trouble is legitimate while
                            // the daemon is being killed; a response
                            // that PARSES WRONG would panic above.
                            Err(_) => lost += 1,
                        }
                    }
                    (got, lost)
                })
            })
            .collect();

        let kill = rng.gen_range(0u32..2) == 0;
        if kill {
            // Let some traffic land, then SIGKILL mid-flight.
            std::thread::sleep(Duration::from_millis(rng.gen_range(30..400) as u64));
            child.kill().unwrap();
            kills += 1;
        }
        for worker in workers {
            let (got, lost) = worker.join().unwrap();
            refused += lost;
            for (pick, exit, output) in got {
                answered += 1;
                // Exit 3 (resource-limited) is a legitimate inconclusive
                // answer while a drain budget-cancels in-flight work; the
                // verdict invariants are one-sided: a sound suite never
                // reads unsound and the planted bug never reads proved.
                let want_exit = suites[pick as usize].1;
                assert!(
                    exit == want_exit || exit == 3,
                    "round {round}: verdict flipped for suite {pick} (exit {exit}): {output}"
                );
                // Payload bytes never drift across fresh/cache/coalesced
                // serves, rounds, or daemon generations. Only conclusive
                // sound payloads are byte-stable: an unsound suite's
                // FAILED lines depend on how far the fail-fast cancel let
                // sibling obligations run, so exit-2 bytes may vary.
                if exit == 0 {
                    let prior = expected.entry(pick).or_insert_with(|| output.clone());
                    assert_eq!(*prior, output, "round {round}: payload drift for suite {pick}");
                }
            }
        }
        if kill {
            child.wait().unwrap();
        } else {
            drains += 1;
            let bye = request_with_retry(
                &ClientConfig {
                    addr,
                    io_timeout: Duration::from_secs(60),
                    retries: 2,
                    backoff_base: Duration::from_millis(10),
                    backoff_cap: Duration::from_millis(100),
                },
                &Request { id: "bye".into(), op: RequestOp::Shutdown },
            )
            .unwrap();
            assert_eq!(format!("{:?}", bye.status), "Bye", "round {round}");
            let status = child.wait().unwrap();
            assert!(status.success(), "round {round}: graceful drain must exit 0: {status:?}");
        }
    }
    println!(
        "serve soak: 20 rounds, {kills} kills, {drains} drains; \
         {answered} answered, {refused} refused mid-chaos"
    );
    assert!(answered > 0, "the soak never exercised a response");
    std::fs::remove_file(&journal).ok();
    std::fs::remove_file(&port_file).ok();
}

/// Parallel kill/resume soak (ISSUE 5): rounds of a `--jobs 4` session
/// killed partway through the suite, resumed at an alternating worker
/// count. Parallel discharge journals outcomes in obligation order, so
/// a kill between appends leaves exactly the same clean prefix a
/// sequential kill would: every resume loads uncorrupted, replays what
/// the dead run proved, and a completed round warms the next full run
/// entirely — regardless of the jobs count on either side of the kill.
#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn parallel_kill_resume_soak() {
    let path = std::env::temp_dir().join(format!(
        "cobalt_soak_parallel_{}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let registry = cobalt::opts::all_optimizations();
    let verifier = |jobs: usize| {
        Verifier::new(LabelEnv::standard(), SemanticMeanings::standard()).with_jobs(jobs)
    };
    let mut rng = Rng::seed_from_u64(0x9A11E7);
    let mut kills = 0u32;

    for round in 0..120u32 {
        let jobs = if round % 2 == 0 { 4 } else { 1 };
        let survive = rng.gen_range(0..=registry.len());
        let mut session = Session::with_journal(verifier(jobs), &path, ResumeMode::Resume)
            .unwrap_or_else(|e| panic!("round {round}: journal must always open: {e}"));
        assert!(
            session.degraded().is_none(),
            "round {round}: the dead run's lock died with it; no contention"
        );
        assert!(
            !session.load_report().corrupted(),
            "round {round}: in-order parallel appends leave a clean journal: {:?}",
            session.load_report()
        );
        for opt in &registry[..survive] {
            let report = session.verify_optimization(opt).unwrap();
            assert!(report.all_proved(), "round {round}: {}", report.summary());
        }
        if survive == registry.len() {
            session.finish();
            assert!(session.degraded().is_none(), "round {round}");
            // A completed journal warms the next full run — at the
            // *other* worker count — entirely.
            let mut warm =
                Session::with_journal(verifier(5 - jobs), &path, ResumeMode::Resume).unwrap();
            for opt in &registry {
                let report = warm.verify_optimization(opt).unwrap();
                assert_eq!(
                    report.cached_count(),
                    report.outcomes.len(),
                    "round {round}: {}",
                    report.summary()
                );
            }
            warm.finish();
        } else {
            kills += 1;
            drop(session); // the kill: no finish, no compaction, lock released
        }
    }
    println!("parallel soak: 120 rounds, {kills} kills survived");
    std::fs::remove_file(&path).ok();
}
