//! Long-running differential soak test, ignored by default.
//!
//! Run with:
//!
//! ```sh
//! cargo test --release --test soak -- --ignored --nocapture
//! ```
//!
//! Sweeps thousands of generated programs through the whole verified
//! suite (and the recursive-DAE self-composition) checking semantic
//! preservation on several inputs each — the heavyweight version of
//! experiment E7.

use cobalt::dsl::LabelEnv;
use cobalt::engine::{Engine, OptimizeSession};
use cobalt::il::{generate, pretty_program, EvalError, GenConfig, Interp, Program};
use cobalt::verify::{ResumeMode, SemanticMeanings, Session, Verifier};
use cobalt_support::rng::Rng;

#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn differential_soak() {
    let engine = Engine::new(LabelEnv::standard());
    let analyses = cobalt::opts::all_analyses();
    let opts = cobalt::opts::default_pipeline();
    let mut runs = 0u64;
    let mut checked = 0u64;
    for seed in 0..4_000u64 {
        let prog = generate(&GenConfig::sized(36, seed));
        let (optimized, _) = engine
            .optimize_program(&prog, &analyses, &opts, 3)
            .unwrap();
        let (rec, _) = cobalt::engine::apply_recursive(
            &engine,
            optimized.main().unwrap(),
            &cobalt::opts::dae(),
        )
        .unwrap();
        let final_prog = optimized.with_proc_replaced(rec);
        for arg in [-7, -1, 0, 1, 2, 9] {
            runs += 1;
            match Interp::new(&prog).with_fuel(200_000).run(arg) {
                Ok(v) => {
                    checked += 1;
                    let w = Interp::new(&final_prog)
                        .with_fuel(400_000)
                        .run(arg)
                        .unwrap_or_else(|e| {
                            panic!("seed {seed} arg {arg}: transformed failed: {e}")
                        });
                    assert_eq!(v, w, "seed {seed} arg {arg}");
                }
                Err(EvalError::Stuck { .. }) | Err(EvalError::OutOfFuel) => {}
                Err(other) => panic!("seed {seed}: {other}"),
            }
        }
    }
    println!("soak: {checked}/{runs} runs produced values; all preserved");
    assert!(checked > runs / 3, "generator health check");
}

/// Crash/resume soak (ISSUE 4): hundreds of rounds of killing a
/// verification session at a random point — sometimes also tearing or
/// bit-flipping the journal tail, as a dying machine would — and
/// resuming. Every resume must load without panicking, never trust a
/// damaged record, and finish the suite; once a round completes
/// cleanly, the next full run must be entirely cached.
#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn journal_crash_resume_soak() {
    let path = std::env::temp_dir().join(format!(
        "cobalt_soak_journal_{}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let registry = cobalt::opts::all_optimizations();
    let verifier = || Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let mut rng = Rng::seed_from_u64(0xC0BA17);
    let mut kills = 0u32;
    let mut tears = 0u32;
    let mut flips = 0u32;

    for round in 0..300u32 {
        // Run the suite, dying after a random number of rules.
        let survive = rng.gen_range(0..=registry.len());
        let mut session = Session::with_journal(verifier(), &path, ResumeMode::Resume)
            .unwrap_or_else(|e| panic!("round {round}: journal must always open: {e}"));
        for opt in &registry[..survive] {
            let report = session.verify_optimization(opt).unwrap();
            assert!(report.all_proved(), "round {round}: {}", report.summary());
        }
        if survive == registry.len() {
            session.finish();
            assert!(session.degraded().is_none(), "round {round}");
            // A completed journal warms the very next full run entirely.
            let mut warm = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
            for opt in &registry {
                let report = warm.verify_optimization(opt).unwrap();
                assert_eq!(
                    report.cached_count(),
                    report.outcomes.len(),
                    "round {round}: {}",
                    report.summary()
                );
            }
            warm.finish();
        } else {
            kills += 1;
            drop(session); // the kill: no finish, no compaction
        }

        // Occasionally damage the tail the way dying hardware does.
        let len = std::fs::metadata(&path).unwrap().len();
        match rng.gen_range(0u32..4) {
            0 if len > 4 => {
                tears += 1;
                let cut = len - rng.gen_range(1..=4.min(len));
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .unwrap()
                    .set_len(cut)
                    .unwrap();
            }
            1 if len > 0 => {
                flips += 1;
                let mut bytes = std::fs::read(&path).unwrap();
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1u8 << rng.gen_range(0u32..8);
                std::fs::write(&path, bytes).unwrap();
            }
            _ => {}
        }
    }
    println!("journal soak: 300 rounds, {kills} kills, {tears} tears, {flips} flips survived");
    std::fs::remove_file(&path).ok();
}

/// Engine journal crash/resume soak (ISSUE 7): rounds of an optimize
/// session killed after journaling a random prefix of the program's
/// procedures — sometimes with the journal tail torn or bit-flipped, as
/// a dying machine would leave it — then resumed at an alternating
/// worker count. Every resume must open without panicking, never trust
/// a damaged record (the checksummed loader discards it and the
/// procedure re-optimizes), and produce output byte-identical to the
/// clean baseline; a completed round warms the next full run entirely.
#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn engine_journal_crash_resume_soak() {
    let path = std::env::temp_dir().join(format!(
        "cobalt_soak_engine_{}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let prog = cobalt_bench::many_proc_program(10, 20, 0xC0BA17);
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    let engine = || Engine::new(LabelEnv::standard());
    let (baseline, base_report) =
        engine().optimize_program_resilient(&prog, &analyses, &passes, 3);
    assert!(!base_report.degraded(), "{:#?}", base_report.failures);
    let baseline = pretty_program(&baseline);
    let mut rng = Rng::seed_from_u64(0xC0BA17);
    let (mut kills, mut tears, mut flips) = (0u32, 0u32, 0u32);

    for round in 0..150u32 {
        let jobs = if round % 2 == 0 { 4 } else { 1 };
        let survive = rng.gen_range(0..=prog.procs.len());
        let mut session = OptimizeSession::new(engine())
            .with_jobs(jobs)
            .with_journal(&path, ResumeMode::Resume);
        assert!(
            session.is_journaled(),
            "round {round}: the journal must always reopen: {:?}",
            session.degraded()
        );
        if survive == prog.procs.len() {
            let (out, report) = session.optimize_program(&prog, &analyses, &passes, 3);
            session.finish();
            assert!(session.degraded().is_none(), "round {round}");
            assert_eq!(
                pretty_program(&out),
                baseline,
                "round {round}: resumed output must match the clean run"
            );
            assert_eq!(report.applied, base_report.applied, "round {round}");
            // A completed journal warms the very next full run entirely.
            let mut warm = OptimizeSession::new(engine())
                .with_jobs(5 - jobs)
                .with_journal(&path, ResumeMode::Resume);
            let (warm_out, warm_report) =
                warm.optimize_program(&prog, &analyses, &passes, 3);
            warm.finish();
            assert_eq!(
                warm_report.cached,
                prog.procs.len(),
                "round {round}: {}",
                warm_report.summary()
            );
            assert_eq!(pretty_program(&warm_out), baseline, "round {round}");
        } else {
            // The kill: journal only the first `survive` procedures,
            // then die without finish() — no compaction.
            kills += 1;
            let partial = Program::new(prog.procs[..survive].to_vec());
            session.optimize_program(&partial, &analyses, &passes, 3);
            drop(session);
        }

        // Occasionally damage the tail the way dying hardware does.
        let len = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        match rng.gen_range(0u32..4) {
            0 if len > 4 => {
                tears += 1;
                let cut = len - rng.gen_range(1..=4.min(len));
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .unwrap()
                    .set_len(cut)
                    .unwrap();
            }
            1 if len > 0 => {
                flips += 1;
                let mut bytes = std::fs::read(&path).unwrap();
                let at = rng.gen_range(0..bytes.len());
                bytes[at] ^= 1u8 << rng.gen_range(0u32..8);
                std::fs::write(&path, bytes).unwrap();
            }
            _ => {}
        }
    }
    println!("engine soak: 150 rounds, {kills} kills, {tears} tears, {flips} flips survived");
    std::fs::remove_file(&path).ok();
}

/// Parallel kill/resume soak (ISSUE 5): rounds of a `--jobs 4` session
/// killed partway through the suite, resumed at an alternating worker
/// count. Parallel discharge journals outcomes in obligation order, so
/// a kill between appends leaves exactly the same clean prefix a
/// sequential kill would: every resume loads uncorrupted, replays what
/// the dead run proved, and a completed round warms the next full run
/// entirely — regardless of the jobs count on either side of the kill.
#[test]
#[ignore = "soak test: minutes of CPU; run explicitly"]
fn parallel_kill_resume_soak() {
    let path = std::env::temp_dir().join(format!(
        "cobalt_soak_parallel_{}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let registry = cobalt::opts::all_optimizations();
    let verifier = |jobs: usize| {
        Verifier::new(LabelEnv::standard(), SemanticMeanings::standard()).with_jobs(jobs)
    };
    let mut rng = Rng::seed_from_u64(0x9A11E7);
    let mut kills = 0u32;

    for round in 0..120u32 {
        let jobs = if round % 2 == 0 { 4 } else { 1 };
        let survive = rng.gen_range(0..=registry.len());
        let mut session = Session::with_journal(verifier(jobs), &path, ResumeMode::Resume)
            .unwrap_or_else(|e| panic!("round {round}: journal must always open: {e}"));
        assert!(
            session.degraded().is_none(),
            "round {round}: the dead run's lock died with it; no contention"
        );
        assert!(
            !session.load_report().corrupted(),
            "round {round}: in-order parallel appends leave a clean journal: {:?}",
            session.load_report()
        );
        for opt in &registry[..survive] {
            let report = session.verify_optimization(opt).unwrap();
            assert!(report.all_proved(), "round {round}: {}", report.summary());
        }
        if survive == registry.len() {
            session.finish();
            assert!(session.degraded().is_none(), "round {round}");
            // A completed journal warms the next full run — at the
            // *other* worker count — entirely.
            let mut warm =
                Session::with_journal(verifier(5 - jobs), &path, ResumeMode::Resume).unwrap();
            for opt in &registry {
                let report = warm.verify_optimization(opt).unwrap();
                assert_eq!(
                    report.cached_count(),
                    report.outcomes.len(),
                    "round {round}: {}",
                    report.summary()
                );
            }
            warm.finish();
        } else {
            kills += 1;
            drop(session); // the kill: no finish, no compaction, lock released
        }
    }
    println!("parallel soak: 120 rounds, {kills} kills survived");
    std::fs::remove_file(&path).ok();
}
