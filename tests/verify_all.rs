//! Experiment E1: every optimization and analysis of the suite is
//! proven sound fully automatically — the paper's headline result
//! ("We have used our correctness checker to automatically prove
//! correct all of the optimizations and pure analyses listed above",
//! §1; timings in §5.1).

use cobalt::dsl::LabelEnv;
use cobalt::verify::{SemanticMeanings, Verifier};

fn verifier() -> Verifier {
    Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
}

#[test]
fn every_analysis_is_proved() {
    let v = verifier();
    for analysis in cobalt::opts::all_analyses() {
        let report = v.verify_analysis(&analysis).unwrap();
        assert!(
            report.all_proved(),
            "{}: failed obligations {:?}",
            analysis.name,
            report.failures()
        );
        assert!(!report.outcomes.is_empty());
    }
}

#[test]
fn every_optimization_is_proved() {
    let v = verifier();
    let mut total_obligations = 0;
    for opt in cobalt::opts::all_optimizations() {
        let report = v.verify_optimization(&opt).unwrap();
        assert!(
            report.all_proved(),
            "{}: failed obligations {:?}",
            opt.name,
            report.failures()
        );
        total_obligations += report.outcomes.len();
    }
    // The suite generates a substantial obligation set (the paper's
    // obligations are per-optimization; ours are additionally split per
    // statement shape).
    assert!(
        total_obligations > 100,
        "only {total_obligations} obligations"
    );
}

#[test]
fn proof_times_are_automatic_scale() {
    // The paper reports 3–104 s per optimization on a 2003 workstation.
    // Our specialized prover on 2026 hardware should stay well under a
    // minute for the whole suite; this guards against pathological
    // regressions in the solver.
    let v = verifier();
    let start = std::time::Instant::now();
    for opt in cobalt::opts::all_optimizations() {
        let _ = v.verify_optimization(&opt).unwrap();
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "suite verification took {:?}",
        start.elapsed()
    );
}

#[test]
fn per_optimization_times_span_a_wide_range() {
    // Shape check for the paper's table: per-optimization cost spans
    // more than an order of magnitude (3 s … 104 s there).
    let v = verifier();
    let mut times = Vec::new();
    for opt in cobalt::opts::all_optimizations() {
        let report = v.verify_optimization(&opt).unwrap();
        times.push(report.elapsed.as_secs_f64());
    }
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0, f64::max);
    assert!(
        max / min > 10.0,
        "expected >10x spread, got {min:.6}s … {max:.6}s"
    );
}
