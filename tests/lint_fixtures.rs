//! Lint fixtures are first-class IL programs: each one must survive a
//! parse → pretty → re-parse round trip unchanged, and the diagnostics
//! the linter emits for them must serialize as valid JSON lines (the
//! `--json` contract downstream tools rely on).

use cobalt::il::{parse_program, pretty_program};
use cobalt::lint::{lint_program, Diagnostic, Diagnostics, Location};

/// The lint-fixture programs and the diagnostic each one exists to
/// trigger.
const FIXTURES: &[(&str, &str, &str)] = &[
    (
        "dangling_goto",
        "proc main(x) { if x goto 9 else 1; return x; }",
        "IL001",
    ),
    (
        "unreachable_stmt",
        "proc main(x) { return x; skip; return x; }",
        "IL003",
    ),
    (
        "use_before_def",
        "proc main(x) { y := q + 1; return y; }",
        "IL004",
    ),
    (
        "addr_taken_never_deref",
        "proc main(x) { decl p; decl y; p := &y; return x; }",
        "IL005",
    ),
];

fn lint(src: &str) -> Diagnostics {
    let prog = parse_program(src).expect("fixture must parse");
    let mut diags = Diagnostics::new();
    lint_program(&prog, &mut diags);
    diags
}

#[test]
fn fixtures_round_trip_through_the_pretty_printer() {
    for (name, src, _) in FIXTURES {
        let first = parse_program(src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let pretty = pretty_program(&first);
        let second = parse_program(&pretty)
            .unwrap_or_else(|e| panic!("{name}: pretty output failed to re-parse: {e}\n{pretty}"));
        assert_eq!(first, second, "{name}: round trip changed the AST");
        assert_eq!(
            pretty,
            pretty_program(&second),
            "{name}: pretty printing is not idempotent"
        );
    }
}

#[test]
fn fixtures_trigger_their_advertised_diagnostics() {
    for (name, src, code) in FIXTURES {
        let diags = lint(src);
        assert!(
            diags.iter().any(|d| d.code == *code),
            "{name}: expected {code}, got:\n{}",
            diags.render_human()
        );
    }
}

#[test]
fn fixture_diagnostics_serialize_as_json_lines() {
    for (name, src, _) in FIXTURES {
        let out = lint(src).json_lines();
        assert!(!out.is_empty(), "{name}: no diagnostics to serialize");
        for line in out.lines() {
            assert!(
                line.starts_with("{\"code\":\"IL") && line.ends_with('}'),
                "{name}: not a JSON object line: {line}"
            );
            for field in ["\"severity\":\"", "\"proc\":\"", "\"message\":\""] {
                assert!(line.contains(field), "{name}: missing {field}: {line}");
            }
            assert!(
                !line.chars().any(|c| c.is_control()),
                "{name}: raw control character in JSON line: {line:?}"
            );
        }
    }
}

#[test]
fn json_escaping_handles_quotes_backslashes_and_newlines() {
    let d = Diagnostic::warning(
        "IL999",
        Location::Il {
            proc: "main".into(),
            index: Some(0),
        },
        "a \"quoted\" \\path\\ and\na newline",
    );
    let line = d.json();
    assert!(line.contains(r#"a \"quoted\" \\path\\ and\na newline"#), "{line}");
    assert!(!line.chars().any(|c| c.is_control()), "{line}");
}
