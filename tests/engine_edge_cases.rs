//! Engine edge cases: nested loops, unreachable code, multiple returns,
//! self-loops, and degenerate procedures — the CFG shapes the worked
//! examples don't cover.

use cobalt::dsl::LabelEnv;
use cobalt::engine::{AnalyzedProc, Engine};
use cobalt::il::{parse_program, Interp};

fn engine() -> Engine {
    Engine::new(LabelEnv::standard())
}

#[test]
fn facts_survive_nested_loops() {
    // The constant fact must hold inside both loop levels: nothing in
    // either body redefines `a`.
    let src = "proc main(x) {
        decl a;
        decl i;
        decl j;
        decl s;
        a := 2;
        i := x;
        j := x;
        s := a;
        j := j - 1;
        if j goto 7 else 10;
        i := i - 1;
        if i goto 6 else 12;
        return s;
    }";
    let prog = parse_program(src).unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, applied) = engine().apply(&ap, &cobalt::opts::const_prop()).unwrap();
    assert_eq!(applied.len(), 1);
    assert_eq!(optimized.stmts[7].to_string(), "s := 2");
    let new_prog = prog.with_proc_replaced(optimized);
    for arg in [1, 3] {
        assert_eq!(
            Interp::new(&prog).run(arg).unwrap(),
            Interp::new(&new_prog).run(arg).unwrap()
        );
    }
}

#[test]
fn facts_killed_inside_nested_loop_only() {
    // The inner loop redefines a: the use after the loops must not be
    // rewritten.
    let src = "proc main(x) {
        decl a;
        decl i;
        decl s;
        a := 2;
        i := x;
        a := a + 1;
        i := i - 1;
        if i goto 5 else 9;
        s := a;
        return s;
    }";
    let prog = parse_program(src).unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (_, applied) = engine().apply(&ap, &cobalt::opts::const_prop()).unwrap();
    assert!(applied.is_empty());
}

#[test]
fn unreachable_code_does_not_pollute_facts() {
    // Node 4 (a := 9) is unreachable; the fact a = 2 must survive it…
    // conservatively our intersection treats unreachable preds as ⊤, so
    // the rewrite at node 5 is allowed.
    let src = "proc main(x) {
        decl a;
        decl c;
        a := 2;
        if 1 goto 5 else 4;
        a := 9;
        c := a;
        return c;
    }";
    let prog = parse_program(src).unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, _) = engine().apply(&ap, &cobalt::opts::const_prop()).unwrap();
    // Whether or not the engine rewrites node 5 (node 4 is a real CFG
    // predecessor even if dynamically unreachable), semantics hold.
    let new_prog = prog.with_proc_replaced(optimized);
    for arg in [0, 2] {
        assert_eq!(
            Interp::new(&prog).run(arg).unwrap(),
            Interp::new(&new_prog).run(arg).unwrap()
        );
    }
}

#[test]
fn multiple_returns_all_enable_dae() {
    let src = "proc main(x) {
        decl d;
        d := 5;
        if x goto 3 else 4;
        return x;
        return x;
    }";
    let prog = parse_program(src).unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, applied) = engine().apply(&ap, &cobalt::opts::dae()).unwrap();
    assert_eq!(applied.len(), 1);
    assert_eq!(optimized.stmts[1].to_string(), "skip");
}

#[test]
fn self_loop_branch_reaches_fixpoint() {
    // `if x goto 0 else 1` — a self-loop at the entry.
    let src = "proc main(x) {
        if x goto 0 else 1;
        return x;
    }";
    let prog = parse_program(src).unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    for opt in cobalt::opts::default_pipeline() {
        let _ = engine().apply(&ap, &opt).unwrap();
    }
}

#[test]
fn minimal_procedure_is_handled() {
    let src = "proc main(x) { return x; }";
    let prog = parse_program(src).unwrap();
    let (optimized, n) = engine()
        .optimize_program(&prog, &[], &cobalt::opts::default_pipeline(), 2)
        .unwrap();
    assert_eq!(n, 0);
    assert_eq!(optimized, prog);
}

#[test]
fn merge_of_three_predecessors_intersects() {
    // Three paths into the merge; only two establish a = 2.
    let src = "proc main(x) {
        decl a;
        decl c;
        if x goto 5 else 3;
        a := 2;
        if 1 goto 7 else 7;
        a := 2;
        if x goto 7 else 7;
        c := a;
        return c;
    }";
    let prog = parse_program(src).unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, applied) = engine().apply(&ap, &cobalt::opts::const_prop()).unwrap();
    // Both predecessors that reach 7 assign a := 2 → rewrite fires.
    assert_eq!(applied.len(), 1, "{}", cobalt::il::pretty_proc(&optimized));
    assert_eq!(optimized.stmts[7].to_string(), "c := 2");
}
