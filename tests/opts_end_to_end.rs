//! Experiment E3: expressiveness — the full PRE pipeline of paper §2.3
//! (code duplication → CSE → self-assignment removal → DAE) transforms
//! the paper's motivating fragment end to end, and the whole suite
//! composes on larger programs.

use cobalt::dsl::LabelEnv;
use cobalt::engine::Engine;
use cobalt::il::{parse_program, pretty_proc, Interp, Stmt};

/// The §2.3 fragment: `x := a + b` after the branch is partially
/// redundant (computed on the true leg only).
const PRE_EXAMPLE: &str = "proc main(q) {
    decl a;
    decl b;
    decl x;
    b := q + 1;
    if q goto 5 else 8;
    a := 2;
    x := a + b;
    if 1 goto 9 else 9;
    skip;
    x := a + b;
    return x;
}";

#[test]
fn pre_pipeline_eliminates_the_partial_redundancy() {
    let prog = parse_program(PRE_EXAMPLE).unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let (optimized, n) = engine
        .optimize_program(&prog, &[], &cobalt::opts::pre_pipeline(), 3)
        .unwrap();
    assert!(n >= 3, "expected duplication + CSE + cleanup, got {n}");
    let main = optimized.main().unwrap();
    let text = pretty_proc(main);
    // The else-leg skip became the duplicated computation…
    assert_eq!(main.stmts[8].to_string(), "x := a + b", "{text}");
    // …and the originally-redundant computation after the merge is gone
    // (rewritten to a copy by CSE, then removed as a self-assignment or
    // dead store).
    assert_ne!(main.stmts[9].to_string(), "x := a + b", "{text}");
    assert!(
        matches!(main.stmts[9], Stmt::Skip),
        "expected the full redundancy to be eliminated:\n{text}"
    );
    // Semantics preserved on both legs of the branch.
    for q in [0, 1, 7] {
        assert_eq!(
            Interp::new(&prog).run(q).unwrap(),
            Interp::new(&optimized).run(q).unwrap(),
            "q = {q}"
        );
    }
}

#[test]
fn full_suite_composes_on_a_mixed_program() {
    let src = "proc main(x) {
        decl a;
        decl b;
        decl c;
        decl t;
        a := 2;
        b := a;
        c := a + b;
        t := a + b;
        if 1 goto 10 else 9;
        t := 0;
        c := c + t;
        t := t;
        return c;
    }";
    let prog = parse_program(src).unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let (optimized, n) = engine
        .optimize_program(
            &prog,
            &cobalt::opts::all_analyses(),
            &cobalt::opts::default_pipeline(),
            5,
        )
        .unwrap();
    assert!(n >= 4, "only {n} rewrites fired");
    for arg in [-1, 0, 3] {
        assert_eq!(
            Interp::new(&prog).run(arg).unwrap(),
            Interp::new(&optimized).run(arg).unwrap()
        );
    }
    // The redundant recomputation of `a + b` was eliminated in some
    // form (propagated, folded, or removed).
    let text = pretty_proc(optimized.main().unwrap());
    assert!(
        text.matches("a + b").count() < 2,
        "redundancy survived:\n{text}"
    );
}

#[test]
fn loop_invariant_code_is_hoisted_by_the_pre_decomposition() {
    // LICM as the paper frames it: decomposable into the PRE passes.
    // The loop recomputes `a + b` every iteration; duplication inserts
    // it at the preheader skip, CSE + cleanup remove the inner one.
    let src = "proc main(x) {
        decl a;
        decl b;
        decl t;
        decl i;
        a := 3;
        b := 4;
        i := x;
        skip;
        t := a + b;
        i := i - 1;
        if i goto 8 else 11;
        return t;
    }";
    let prog = parse_program(src).unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let (optimized, _) = engine
        .optimize_program(&prog, &[], &cobalt::opts::pre_pipeline(), 3)
        .unwrap();
    let main = optimized.main().unwrap();
    let text = pretty_proc(main);
    // The preheader skip now computes the invariant.
    assert_eq!(main.stmts[7].to_string(), "t := a + b", "{text}");
    // And the loop body no longer recomputes it.
    assert!(
        matches!(main.stmts[8], Stmt::Skip),
        "loop body should be cleaned:\n{text}"
    );
    for arg in [1, 5] {
        assert_eq!(
            Interp::new(&prog).run(arg).unwrap(),
            Interp::new(&optimized).run(arg).unwrap()
        );
    }
}

#[test]
fn optimizations_cooperate_across_procedures() {
    let src = "proc main(x) {
        decl r;
        decl a;
        decl b;
        r := helper(x);
        a := 2;
        b := a;
        r := r + b;
        return r;
    }
    proc helper(n) {
        decl t;
        decl u;
        t := n * n;
        u := n * n;
        return u;
    }";
    let prog = parse_program(src).unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let (optimized, n) = engine
        .optimize_program(
            &prog,
            &cobalt::opts::all_analyses(),
            &cobalt::opts::default_pipeline(),
            4,
        )
        .unwrap();
    assert!(n > 0);
    for arg in [0, 2, -5] {
        assert_eq!(
            Interp::new(&prog).run(arg).unwrap(),
            Interp::new(&optimized).run(arg).unwrap()
        );
    }
}
