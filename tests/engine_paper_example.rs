//! Experiment E4: the execution engine reproduces the worked example of
//! paper §5.2 — the substitution-set dataflow facts and the final
//! rewrite of `c := a` to `c := 2`.

use cobalt::dsl::{LabelEnv, RegionGuard};
use cobalt::engine::{forward_in_facts, AnalyzedProc, Engine};
use cobalt::il::parse_program;

fn const_prop_guard() -> RegionGuard {
    match &cobalt::opts::const_prop().pattern.guard {
        cobalt::dsl::GuardSpec::Region(rg) => rg.clone(),
        _ => unreachable!("const_prop is a region pattern"),
    }
}

#[test]
fn dataflow_facts_match_figure() {
    // S1: a := 2;   [Y ↦ a, C ↦ 2]
    // S2: b := 3;   [Y ↦ a, C ↦ 2], [Y ↦ b, C ↦ 3]
    // S3: c := a;
    let prog = parse_program("proc main(x) { a := 2; b := 3; c := a; return c; }").unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let env = LabelEnv::standard();
    let ins = forward_in_facts(&ap, &env, &const_prop_guard()).unwrap();

    let show = |i: usize| {
        let mut v: Vec<String> = ins[i].iter().map(|s| s.to_string()).collect();
        v.sort();
        v.join(", ")
    };
    assert_eq!(show(1), "[C ↦ 2, Y ↦ a]");
    assert_eq!(show(2), "[C ↦ 2, Y ↦ a], [C ↦ 3, Y ↦ b]");
}

#[test]
fn fixed_point_rewrites_like_the_paper() {
    let prog = parse_program("proc main(x) { a := 2; b := 3; c := a; return c; }").unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, applied) = engine.apply(&ap, &cobalt::opts::const_prop()).unwrap();
    assert_eq!(applied.len(), 1);
    assert_eq!(optimized.stmts[2].to_string(), "c := 2");
}

#[test]
fn all_instances_evaluated_simultaneously() {
    // The engine evaluates all instances of the pattern at once
    // (paper: "this implementation evaluates all instances of the
    // constant propagation transformation pattern simultaneously").
    let prog = parse_program(
        "proc main(x) {
            a := 2;
            b := 3;
            c := a;
            d := b;
            e := a;
            return e;
         }",
    )
    .unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, applied) = engine.apply(&ap, &cobalt::opts::const_prop()).unwrap();
    assert_eq!(applied.len(), 3);
    assert_eq!(optimized.stmts[2].to_string(), "c := 2");
    assert_eq!(optimized.stmts[3].to_string(), "d := 3");
    assert_eq!(optimized.stmts[4].to_string(), "e := 2");
}

#[test]
fn loops_reach_a_fixed_point() {
    // A back edge forces iteration: the fact must be killed by the loop
    // body's redefinition on the second pass.
    let prog = parse_program(
        "proc main(x) {
            a := 2;
            c := a;
            a := x;
            if x goto 1 else 5;
            skip;
            return c;
         }",
    )
    .unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, applied) = engine.apply(&ap, &cobalt::opts::const_prop()).unwrap();
    assert!(applied.is_empty(), "{}", cobalt::il::pretty_proc(&optimized));
}
