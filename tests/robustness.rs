//! Robustness: resource-governed proving and graceful degradation.
//!
//! The paper's workflow assumes the prover may be slow or may give up —
//! "Simplify fails to prove it within a reasonable amount of time" is a
//! legitimate outcome (§5.1). These tests pin down the engineering that
//! makes that safe in practice: hard deadlines produce `Unknown`, not
//! hangs; degenerate limits fail fast, not crash; a prover panic is
//! contained to one obligation; and a pass that dies mid-pipeline is
//! skipped while the rest of the compiler keeps its (machine-verified)
//! soundness guarantee.

use cobalt::dsl::LabelEnv;
use cobalt::engine::{Budget, Engine, EngineError, FailureKind};
use cobalt::il::{generate, EvalError, GenConfig, Interp, Program};
use cobalt::logic::Limits;
use cobalt::verify::{ResumeMode, RetryPolicy, SemanticMeanings, Session, Verifier};
use cobalt_support::fault;
use std::path::PathBuf;
use std::time::Duration;

fn verifier() -> Verifier {
    Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
}

fn scratch_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "cobalt_robustness_{}_{tag}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

/// Acceptance: under a 50ms per-report deadline the *whole* built-in
/// suite still completes — every obligation gets an outcome (proved, or
/// a deadline/limit `Unknown`), nothing hangs, nothing panics, and no
/// failure claims unsoundness.
#[test]
fn fifty_ms_deadline_completes_suite_without_hang_or_panic() {
    let v = verifier().with_retry_policy(
        RetryPolicy::default().with_report_deadline(Duration::from_millis(50)),
    );
    for a in cobalt::opts::all_analyses() {
        let report = v.verify_analysis(&a).unwrap();
        assert!(!report.outcomes.is_empty());
        assert!(
            report.only_resource_limited_failures(),
            "{}: a deadline failure must not look like unsoundness: {:#?}",
            report.name,
            report.outcomes
        );
    }
    for o in cobalt::opts::all_optimizations() {
        let report = v.verify_optimization(&o).unwrap();
        assert!(!report.outcomes.is_empty());
        assert!(
            report.only_resource_limited_failures(),
            "{}: a deadline failure must not look like unsoundness: {:#?}",
            report.name,
            report.outcomes
        );
        // Generous sanity bound: the report deadline is enforced per
        // report, modulo one in-flight prover attempt.
        assert!(
            report.elapsed < Duration::from_secs(30),
            "{}: report took {:?}",
            report.name,
            report.elapsed
        );
    }
}

/// The default retry policy changes nothing about E1: everything still
/// proves, and the bookkeeping records at least one attempt per
/// obligation.
#[test]
fn default_policy_proves_const_prop_with_attempt_bookkeeping() {
    let report = verifier()
        .verify_optimization(&cobalt::opts::const_prop())
        .unwrap();
    assert!(report.all_proved(), "{}", report.summary());
    assert!(report.total_attempts() >= report.outcomes.len() as u32);
    for o in &report.outcomes {
        assert!(o.attempts >= 1);
        assert_eq!(o.escalations, o.attempts - 1);
    }
    assert!(report.summary().contains("obligations proved"));
}

/// Degenerate limits (all zero) fail fast on *every* obligation — as a
/// resource limit, before any search or interning starts.
#[test]
fn degenerate_zero_limits_fail_every_obligation_fast() {
    let v = verifier().with_limits(Limits {
        max_splits: 0,
        max_inst_rounds: 0,
        max_terms: 0,
        deadline: None,
    });
    let start = std::time::Instant::now();
    let report = v
        .verify_optimization(&cobalt::opts::const_prop())
        .unwrap();
    assert!(!report.outcomes.is_empty());
    for o in &report.outcomes {
        assert!(!o.proved, "{}: proved under zero limits?", o.id);
        assert!(o.resource_limited, "{}: {}", o.id, o.detail);
        assert_eq!(o.attempts, 1);
    }
    assert!(report.only_resource_limited_failures());
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "zero limits must fail fast, took {:?}",
        start.elapsed()
    );
}

/// Companion to the degenerate-limits fast-fail above, for the other
/// two ways a solver can be dead on arrival: a pre-tripped cancel flag
/// (a parallel sibling already found an unsound obligation) and an
/// already-expired deadline. Both must return a resource-limited
/// `Unknown` before any search or interning starts — a cancelled
/// worker that still pays NNF + congruence-closure setup per remaining
/// obligation would make fail-fast cancellation pointless.
#[test]
fn pre_tripped_cancel_and_expired_deadline_fail_before_search() {
    use cobalt::logic::{Budget, Formula, Outcome, ProofTask, Solver, Stats};
    use std::sync::atomic::Ordering;

    // A goal that trivially proves, so only the fast-fail can explain
    // an Unknown outcome.
    let task_in = |s: &mut Solver| {
        let (x, y) = (s.bank.app0("x"), s.bank.app0("y"));
        ProofTask {
            hypotheses: vec![Formula::Eq(x, y)],
            goal: Formula::Eq(y, x),
        }
    };

    let mut cancelled = Solver::new();
    cancelled
        .cancel_flag()
        .store(true, Ordering::Relaxed);
    let task = task_in(&mut cancelled);
    let out = cancelled.prove(&task);
    assert!(out.is_resource_limited(), "{out:?}");
    let Outcome::Unknown { reason, stats, .. } = out else {
        panic!("expected Unknown");
    };
    assert!(reason.contains("cancelled by caller before search"), "{reason}");
    assert_eq!(stats, Stats::default(), "no search work may have happened");

    let mut expired = Solver::new();
    expired.set_budget(Budget::with_deadline(Duration::ZERO));
    let task = task_in(&mut expired);
    let out = expired.prove(&task);
    assert!(out.is_resource_limited(), "{out:?}");
    let Outcome::Unknown { reason, stats, .. } = out else {
        panic!("expected Unknown");
    };
    assert!(reason.contains("before search began"), "{reason}");
    assert_eq!(stats, Stats::default());
}

/// A prover panic is contained to the one obligation it occurred in:
/// that obligation fails with a `panicked: …` detail (and is *not*
/// counted as resource-limited), while every other obligation still
/// proves.
#[test]
fn prover_panic_is_isolated_to_one_obligation() {
    let report = fault::with_faults("checker.obligation:panic@1", || {
        verifier()
            .verify_optimization(&cobalt::opts::const_prop())
            .unwrap()
    });
    let panicked: Vec<_> = report
        .outcomes
        .iter()
        .filter(|o| o.detail.starts_with("panicked:"))
        .collect();
    assert_eq!(panicked.len(), 1, "{:#?}", report.outcomes);
    assert!(!panicked[0].proved);
    assert!(!panicked[0].resource_limited);
    assert!(panicked[0].detail.contains("injected fault"));
    let others_proved = report
        .outcomes
        .iter()
        .filter(|o| !o.detail.starts_with("panicked:"))
        .all(|o| o.proved);
    assert!(others_proved, "{:#?}", report.outcomes);
    assert!(!report.only_resource_limited_failures());
}

/// Acceptance (ISSUE 4): a verification run killed mid-suite resumes
/// from its journal. The kill is simulated the way SIGKILL manifests in
/// process state — the `Session` is dropped without `finish()`, so the
/// journal holds the per-obligation records that were appended and
/// synced but was never compacted. The resumed run replays everything
/// the dead run proved and only proves the remainder.
#[test]
fn kill_mid_run_resume_skips_already_proved_obligations() {
    let path = scratch_journal("kill_resume");
    let registry = cobalt::opts::all_optimizations();
    assert!(registry.len() >= 3, "need several rules to kill between");

    // Run 1 gets through two rules, then the process "dies".
    let mut killed = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    for opt in &registry[..2] {
        assert!(killed.verify_optimization(opt).unwrap().all_proved());
    }
    drop(killed); // no finish(): no compaction, exactly what a kill leaves

    // Run 2 resumes: the dead run's obligations are cached, the rest
    // prove fresh, and the suite completes.
    let mut resumed = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    assert!(
        !resumed.load_report().corrupted(),
        "append+sync per outcome leaves a clean journal: {:?}",
        resumed.load_report()
    );
    for (i, opt) in registry.iter().enumerate() {
        let report = resumed.verify_optimization(opt).unwrap();
        assert!(report.all_proved(), "{}", report.summary());
        if i < 2 {
            assert_eq!(
                report.cached_count(),
                report.outcomes.len(),
                "{}: proved before the kill, must be fully cached: {}",
                opt.name,
                report.summary()
            );
        } else {
            assert_eq!(
                report.cached_count(),
                0,
                "{}: never reached before the kill",
                opt.name
            );
        }
    }
    resumed.finish();
    assert!(resumed.degraded().is_none());
    std::fs::remove_file(&path).ok();
}

/// A torn write — the tail record half-flushed when the machine died —
/// is detected, discarded, and re-proved on resume; every record before
/// the tear is still trusted and replayed.
#[test]
fn torn_write_on_kill_is_discarded_and_only_that_obligation_reproves() {
    let path = scratch_journal("torn");
    let registry = cobalt::opts::all_optimizations();

    let mut killed = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    for opt in &registry[..2] {
        assert!(killed.verify_optimization(opt).unwrap().all_proved());
    }
    drop(killed);

    // Tear the final record: chop three bytes off the file tail.
    let len = std::fs::metadata(&path).unwrap().len();
    let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    file.set_len(len - 3).unwrap();
    drop(file);

    let mut resumed = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    assert!(
        resumed.load_report().corrupted(),
        "the tear must be reported: {:?}",
        resumed.load_report()
    );
    // Rule 0's records all predate the tear: fully cached.
    let first = resumed.verify_optimization(&registry[0]).unwrap();
    assert!(first.all_proved());
    assert_eq!(first.cached_count(), first.outcomes.len(), "{}", first.summary());
    // Rule 1 lost exactly its final record to the tear: one obligation
    // re-proves, the rest replay.
    let second = resumed.verify_optimization(&registry[1]).unwrap();
    assert!(second.all_proved(), "{}", second.summary());
    assert_eq!(
        second.cached_count(),
        second.outcomes.len() - 1,
        "exactly the torn record re-proves: {}",
        second.summary()
    );
    assert!(
        !second.outcomes.last().unwrap().cached,
        "the torn record was the last obligation journaled"
    );
    resumed.finish();

    // After finish() the journal is compacted and clean again.
    let clean = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    assert!(!clean.load_report().corrupted(), "{:?}", clean.load_report());
    std::fs::remove_file(&path).ok();
}

/// A journal write failure mid-run degrades the session to uncached
/// verification without corrupting what was already durable: the next
/// run still loads every record written before the fault.
#[test]
fn journal_write_fault_degrades_session_but_preserves_durable_records() {
    let path = scratch_journal("write_fault");
    let registry = cobalt::opts::all_optimizations();

    let mut session = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    let reports: Vec<_> = fault::with_faults("journal.write:fail@3", || {
        registry
            .iter()
            .map(|opt| session.verify_optimization(opt).unwrap())
            .collect()
    });
    // Verification itself is unharmed...
    for report in &reports {
        assert!(report.all_proved(), "{}", report.summary());
    }
    // ...but journaling shut down at the third append.
    let reason = session.degraded().expect("write fault must degrade").to_string();
    assert!(reason.contains("injected fault"), "{reason}");
    session.finish();

    let resumed = Session::with_journal(verifier(), &path, ResumeMode::Resume).unwrap();
    assert!(!resumed.load_report().corrupted(), "{:?}", resumed.load_report());
    assert_eq!(
        resumed.load_report().records,
        2,
        "the two appends before the fault survive"
    );
    std::fs::remove_file(&path).ok();
}

/// E7-style semantic check: whenever the original returns a value, the
/// transformed program returns the same one.
fn check_equivalent(orig: &Program, new: &Program, arg: i64, context: &str) {
    match Interp::new(orig).with_fuel(200_000).run(arg) {
        Ok(v) => match Interp::new(new).with_fuel(400_000).run(arg) {
            Ok(w) => assert_eq!(v, w, "{context}: result changed for arg {arg}"),
            Err(e) => panic!("{context}: original returned {v}, transformed failed: {e}"),
        },
        Err(EvalError::Stuck { .. }) | Err(EvalError::OutOfFuel) => {}
        Err(other) => panic!("{context}: unexpected {other}"),
    }
}

/// Acceptance: with a fault making a pass panic mid-pipeline, the
/// resilient driver completes, names the skipped pass, and the output
/// is still semantics-preserving by the differential harness.
#[test]
fn fault_injected_pass_panic_degrades_gracefully_and_preserves_semantics() {
    let engine = Engine::new(LabelEnv::standard());
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    for seed in [7u64, 19, 42] {
        let prog = generate(&GenConfig::sized(30, seed));
        // Hit 2: the first pass application survives, the second one
        // panics — mid-pipeline, not at the start.
        let (out, report) = fault::with_faults("engine.pass:panic@2", || {
            engine.optimize_program_resilient(&prog, &analyses, &passes, 3)
        });
        assert!(report.degraded(), "seed {seed}: fault did not fire");
        assert_eq!(report.skipped_passes().len(), 1);
        assert!(
            report.failures[0].reason.contains("injected fault"),
            "seed {seed}: {}",
            report.failures[0].reason
        );
        assert!(report.summary().contains("degraded: skipped"));
        for arg in -4..10 {
            check_equivalent(&prog, &out, arg, &format!("seed {seed}, degraded pipeline"));
        }
    }
}

/// Acceptance (ISSUE 7): an engine whose fixpoint budget is exhausted
/// quarantines every pass as a typed resource-limited failure — never a
/// crash, never a misoptimization. The output program is the input
/// program (sound by §4.1 noninterference: a skipped pass changes
/// nothing), and the report classifies the run for the exit-3 contract.
#[test]
fn engine_budget_exhaustion_quarantines_soundly_and_preserves_semantics() {
    let engine = Engine::new(LabelEnv::standard()).with_budget(Budget::unlimited().with_max_steps(0));
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    for seed in [5u64, 23] {
        let prog = generate(&GenConfig::sized(30, seed));
        let (out, report) = engine.optimize_program_resilient(&prog, &analyses, &passes, 3);
        assert!(report.degraded(), "seed {seed}: zero steps must degrade");
        assert!(
            report.resource_limited(),
            "seed {seed}: exhaustion must classify as resource-limited"
        );
        assert!(
            report
                .failures
                .iter()
                .all(|f| f.kind == FailureKind::ResourceLimited),
            "seed {seed}: {:#?}",
            report.failures
        );
        assert!(
            report.failures[0].reason.contains("step cap exhausted"),
            "seed {seed}: {}",
            report.failures[0].reason
        );
        // Passes that never enter a metered fixpoint (single-sweep
        // backward derivations) may still apply; every pass that *does*
        // need a fixpoint must be among the quarantined ones.
        assert!(
            !report.skipped_passes().is_empty(),
            "seed {seed}: the fixpoint passes must be quarantined"
        );
        for arg in -4..8 {
            check_equivalent(&prog, &out, arg, &format!("seed {seed}, exhausted budget"));
        }
    }
}

/// The strict driver surfaces the same exhaustion as a typed
/// [`EngineError::ResourceLimited`] (the CLI's exit-3), not a panic and
/// not a silent partial result.
#[test]
fn strict_driver_surfaces_budget_exhaustion_as_typed_error() {
    let engine = Engine::new(LabelEnv::standard()).with_budget(Budget::unlimited().with_max_steps(0));
    let prog = generate(&GenConfig::sized(30, 5));
    let err = engine
        .optimize_program(
            &prog,
            &cobalt::opts::all_analyses(),
            &cobalt::opts::default_pipeline(),
            3,
        )
        .unwrap_err();
    match err {
        EngineError::ResourceLimited(reason) => {
            assert!(reason.contains("step cap exhausted"), "{reason}");
        }
        other => panic!("expected ResourceLimited, got {other}"),
    }
}

/// A generous budget is invisible: the governed engine produces exactly
/// the unlimited engine's output and the report stays clean.
#[test]
fn generous_budget_does_not_change_results() {
    let unlimited = Engine::new(LabelEnv::standard());
    let governed = Engine::new(LabelEnv::standard()).with_budget(
        Budget::unlimited()
            .with_max_steps(50_000_000)
            .with_deadline(Duration::from_secs(600)),
    );
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    for seed in [7u64, 19] {
        let prog = generate(&GenConfig::sized(30, seed));
        let (a, ra) = unlimited.optimize_program_resilient(&prog, &analyses, &passes, 3);
        let (b, rb) = governed.optimize_program_resilient(&prog, &analyses, &passes, 3);
        assert_eq!(
            cobalt::il::pretty_program(&a),
            cobalt::il::pretty_program(&b),
            "seed {seed}"
        );
        assert_eq!(ra.applied, rb.applied, "seed {seed}");
        assert!(!rb.degraded(), "seed {seed}: {:#?}", rb.failures);
    }
}

/// Acceptance (ISSUE 7): an injected failure at the `engine.fixpoint`
/// entry quarantines the pass it hit, names the injected fault, and the
/// degraded pipeline is still semantics-preserving by the differential
/// harness.
#[test]
fn fault_injected_fixpoint_failure_degrades_and_preserves_semantics() {
    let engine = Engine::new(LabelEnv::standard());
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    for seed in [7u64, 42] {
        let prog = generate(&GenConfig::sized(30, seed));
        let (out, report) = fault::with_faults("engine.fixpoint:fail@2", || {
            engine.optimize_program_resilient(&prog, &analyses, &passes, 3)
        });
        assert!(report.degraded(), "seed {seed}: fault did not fire");
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.kind == FailureKind::Error && f.reason.contains("injected fault")),
            "seed {seed}: {:#?}",
            report.failures
        );
        assert!(
            !report.resource_limited(),
            "seed {seed}: an injected error is a failure, not a resource limit"
        );
        for arg in -4..8 {
            check_equivalent(&prog, &out, arg, &format!("seed {seed}, fixpoint fault"));
        }
    }
}

/// Same contract for a failure injected at a merge point deep inside
/// the fixpoint loop — the mid-iteration abort must not leak a
/// half-updated solution into a rewrite.
#[test]
fn fault_injected_merge_failure_degrades_and_preserves_semantics() {
    let engine = Engine::new(LabelEnv::standard());
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    for seed in [11u64, 29] {
        let prog = generate(&GenConfig::sized(30, seed));
        let (out, report) = fault::with_faults("engine.merge:fail@4", || {
            engine.optimize_program_resilient(&prog, &analyses, &passes, 3)
        });
        // Branch-free seeds may never hit merge #4; the fault then
        // simply never fires, which is itself a valid (clean) run.
        if report.degraded() {
            assert!(
                report
                    .failures
                    .iter()
                    .all(|f| f.reason.contains("injected fault")),
                "seed {seed}: {:#?}",
                report.failures
            );
        }
        for arg in -4..8 {
            check_equivalent(&prog, &out, arg, &format!("seed {seed}, merge fault"));
        }
    }
}

// ---------------------------------------------------------------------------
// The verification daemon (`cobalt serve`): deadline disconnects, load
// shedding, single-flight dedup, fault degradation, graceful drain, and
// kill-the-daemon crash recovery.
// ---------------------------------------------------------------------------

mod serve {
    use super::*;
    use cobalt::serve::{
        request_with_retry, ClientConfig, ClientError, Request, RequestOp, ServeConfig,
        ServedFrom, Server, ServerHandle, Status,
    };
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::TcpStream;

    /// A one-rule suite (27 obligations) — the daemon's workload unit.
    const SUITE: &str = "forward const_prop {
        stmt(Y := C) followed by !mayDef(Y)
        until X := Y => X := C
        with witness eta(Y) == C
    }";

    /// A distinct suite (different rule name → different fingerprint).
    const SUITE_B: &str = "forward const_prop_b {
        stmt(Y := C) followed by !mayDef(Y)
        until X := Y => X := C
        with witness eta(Y) == C
    }";

    const SUITE_C: &str = "forward const_prop_c {
        stmt(Y := C) followed by !mayDef(Y)
        until X := Y => X := C
        with witness eta(Y) == C
    }";

    fn verify_req(id: &str, suite: &str) -> Request {
        Request {
            id: id.into(),
            op: RequestOp::Verify {
                suite: Some(suite.into()),
                include_buggy: false,
            },
        }
    }

    fn client_cfg(handle: &ServerHandle, retries: u32) -> ClientConfig {
        ClientConfig {
            addr: handle.addr().to_string(),
            io_timeout: Duration::from_secs(120),
            retries,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
        }
    }

    /// A client that stops talking is disconnected at the read
    /// deadline — and the daemon keeps serving everyone else.
    #[test]
    fn slow_client_is_disconnected_at_the_read_deadline() {
        let handle = Server::start(ServeConfig {
            read_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        })
        .unwrap();
        // Connect and go silent: the daemon must hang up on us.
        let mut mute = TcpStream::connect(handle.addr()).unwrap();
        mute.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut buf = [0u8; 16];
        let start = std::time::Instant::now();
        let n = mute.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "the daemon must close a silent connection");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "disconnect took {:?}",
            start.elapsed()
        );
        // The daemon is unharmed: a well-behaved client still gets
        // answered afterwards.
        let pong = request_with_retry(
            &client_cfg(&handle, 1),
            &Request { id: "p".into(), op: RequestOp::Ping },
        )
        .unwrap();
        assert_eq!(pong.status, Status::Ok);
        handle.shutdown();
        handle.join();
    }

    /// Overload: with one worker busy on a slow proof and a one-slot
    /// queue, excess requests get a typed `shed` with a usable
    /// retry hint — not an unbounded queue, not a hang.
    #[test]
    fn full_queue_sheds_with_typed_response_and_retry_hint() {
        let handle = fault::with_faults("checker.obligation:delay_ms@50", || {
            Server::start(ServeConfig {
                jobs: 1,
                queue_cap: 1,
                drain_wait: Duration::from_secs(60),
                ..ServeConfig::default()
            })
            .unwrap()
        });
        // The blocker: ~27 obligations × 50ms ≈ 1.4s of prover time.
        let blocker = {
            let cfg = client_cfg(&handle, 0);
            std::thread::spawn(move || request_with_retry(&cfg, &verify_req("blk", SUITE)))
        };
        // Give the dispatcher time to pick the blocker up, then fill
        // the queue and overflow it.
        std::thread::sleep(Duration::from_millis(400));
        let filler = {
            let cfg = client_cfg(&handle, 0);
            std::thread::spawn(move || request_with_retry(&cfg, &verify_req("fill", SUITE_B)))
        };
        std::thread::sleep(Duration::from_millis(100));
        match request_with_retry(&client_cfg(&handle, 0), &verify_req("over", SUITE_C)) {
            Err(ClientError::Shed(resp)) => {
                assert_eq!(resp.status, Status::Shed);
                assert!(
                    (25..=2000).contains(&resp.retry_after_ms),
                    "hint out of band: {}",
                    resp.retry_after_ms
                );
                assert!(resp.error.contains("queue full"), "{}", resp.error);
            }
            other => panic!("expected a typed shed, got {other:?}"),
        }
        // Nobody already admitted is harmed by the overload.
        let blocked = blocker.join().unwrap().unwrap();
        assert_eq!(blocked.exit, 0, "{}", blocked.output);
        let filled = filler.join().unwrap().unwrap();
        assert_eq!(filled.exit, 0, "{}", filled.output);
        handle.shutdown();
        let summary = handle.join();
        assert!(summary.shed >= 1, "{summary:?}");
        assert_eq!(summary.fresh, 2, "{summary:?}");
    }

    /// Single-flight dedup: two clients proving the same suite while
    /// the worker is busy land in one batch — exactly one prover run,
    /// the second response coalesced onto it, payloads byte-identical.
    #[test]
    fn concurrent_identical_requests_share_one_prover_run() {
        let handle = fault::with_faults("checker.obligation:delay_ms@20", || {
            Server::start(ServeConfig {
                jobs: 2,
                queue_cap: 16,
                drain_wait: Duration::from_secs(60),
                ..ServeConfig::default()
            })
            .unwrap()
        });
        // Occupy the dispatcher so the twins queue up together.
        let blocker = {
            let cfg = client_cfg(&handle, 0);
            std::thread::spawn(move || request_with_retry(&cfg, &verify_req("blk", SUITE_B)))
        };
        std::thread::sleep(Duration::from_millis(150));
        let twins: Vec<_> = (0..2)
            .map(|i| {
                let cfg = client_cfg(&handle, 0);
                std::thread::spawn(move || {
                    request_with_retry(&cfg, &verify_req(&format!("twin{i}"), SUITE))
                })
            })
            .collect();
        let results: Vec<_> = twins
            .into_iter()
            .map(|t| t.join().unwrap().unwrap())
            .collect();
        blocker.join().unwrap().unwrap();
        handle.shutdown();
        let summary = handle.join();
        // Identical payloads, whatever the serving path.
        assert_eq!(results[0].output, results[1].output);
        assert_eq!(results[0].exit, 0, "{}", results[0].output);
        assert_eq!(results[0].verdict, results[1].verdict);
        // Exactly one prover run for the twins (+1 for the blocker):
        // the second twin was coalesced onto the first's run, or — if
        // the batches happened to split — served from its cache entry.
        // Either way the run count cannot exceed blocker + one twin.
        assert_eq!(summary.fresh, 2, "one run for two twins: {summary:?}");
        assert_eq!(
            summary.coalesced + summary.cache_hits,
            1,
            "the second twin must not have run: {summary:?}"
        );
    }

    /// The four `serve.*` fault points degrade exactly one connection
    /// each — never the daemon, never a verdict.
    #[test]
    fn serve_fault_points_degrade_single_connections_not_the_daemon() {
        // serve.accept: the faulted connection is dropped right after
        // accept. TCP-wise the client's connect succeeded, so it sees
        // a mid-exchange reset (final — nothing executed, but the
        // client can't know that); its next request is served fine.
        let handle = fault::with_faults("serve.accept:fail@1", || {
            Server::start(ServeConfig::default()).unwrap()
        });
        let ping = Request { id: "p".into(), op: RequestOp::Ping };
        match request_with_retry(&client_cfg(&handle, 0), &ping) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected the dropped connection as Io, got {other:?}"),
        }
        let pong = request_with_retry(&client_cfg(&handle, 0), &ping).unwrap();
        assert_eq!(pong.status, Status::Ok, "the daemon must survive the accept fault");
        handle.shutdown();
        handle.join();

        // serve.read: the connection dies before reading the request —
        // the client sees a closed socket (final, not retried: nothing
        // executed, but the client can't know that), the daemon lives.
        let handle = fault::with_faults("serve.read:fail@1", || {
            Server::start(ServeConfig::default()).unwrap()
        });
        match request_with_retry(&client_cfg(&handle, 0), &verify_req("r", SUITE)) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected an Io disconnect, got {other:?}"),
        }
        let pong = request_with_retry(
            &client_cfg(&handle, 1),
            &Request { id: "p".into(), op: RequestOp::Ping },
        )
        .unwrap();
        assert_eq!(pong.status, Status::Ok);
        handle.shutdown();
        handle.join();

        // serve.write: the request EXECUTES but the response line is
        // lost. The client's manual retry is served from cache — the
        // crash-safe cache is what makes a lost response harmless.
        let handle = fault::with_faults("serve.write:fail@1", || {
            Server::start(ServeConfig::default()).unwrap()
        });
        match request_with_retry(&client_cfg(&handle, 0), &verify_req("w", SUITE)) {
            Err(ClientError::Io(_)) => {}
            other => panic!("expected an Io disconnect, got {other:?}"),
        }
        let replay = request_with_retry(&client_cfg(&handle, 0), &verify_req("w2", SUITE)).unwrap();
        assert_eq!(replay.exit, 0, "{}", replay.output);
        assert_eq!(
            replay.served,
            ServedFrom::Cache,
            "the lost response's work must be reused"
        );
        handle.shutdown();
        handle.join();
    }

    /// `serve.cache` trouble at startup degrades the daemon to an
    /// uncached in-memory cache: every verdict still correct, every
    /// response carrying the degradation note, exit path clean.
    #[test]
    fn cache_fault_degrades_to_uncached_service_with_note() {
        let journal = std::env::temp_dir().join(format!(
            "cobalt_robustness_{}_serve_cachefault.cobj",
            std::process::id()
        ));
        std::fs::remove_file(&journal).ok();
        let handle = fault::with_faults("serve.cache:fail@1", || {
            Server::start(ServeConfig {
                journal: Some((journal.clone(), ResumeMode::Resume)),
                ..ServeConfig::default()
            })
            .unwrap()
        });
        let resp = request_with_retry(&client_cfg(&handle, 0), &verify_req("c", SUITE)).unwrap();
        assert_eq!(resp.exit, 0, "degradation must not change the verdict: {}", resp.output);
        assert!(
            resp.note.contains("degraded"),
            "the response must disclose the degraded cache: {:?}",
            resp.note
        );
        handle.shutdown();
        let summary = handle.join();
        assert!(summary.degraded.is_some(), "{summary:?}");
        std::fs::remove_file(&journal).ok();
    }

    /// Graceful drain with work in flight: the in-flight request gets
    /// its full answer, then the daemon exits with a clean summary.
    #[test]
    fn drain_waits_for_in_flight_work() {
        let handle = fault::with_faults("checker.obligation:delay_ms@20", || {
            Server::start(ServeConfig {
                drain_wait: Duration::from_secs(60),
                ..ServeConfig::default()
            })
            .unwrap()
        });
        let inflight = {
            let cfg = client_cfg(&handle, 0);
            std::thread::spawn(move || request_with_retry(&cfg, &verify_req("in", SUITE)))
        };
        std::thread::sleep(Duration::from_millis(150));
        handle.shutdown();
        let resp = inflight.join().unwrap().unwrap();
        assert_eq!(resp.exit, 0, "drain must not rob the in-flight request: {}", resp.output);
        let summary = handle.join();
        assert_eq!(summary.fresh, 1, "{summary:?}");
    }

    /// Hard drain: when the grace period expires first, the in-flight
    /// request is budget-cancelled — it answers resource-limited
    /// (exit 3, inconclusive), never unsound, and the daemon still
    /// exits cleanly.
    #[test]
    fn drain_deadline_budget_cancels_in_flight_work() {
        let handle = fault::with_faults("checker.obligation:delay_ms@200", || {
            Server::start(ServeConfig {
                drain_wait: Duration::from_millis(100),
                ..ServeConfig::default()
            })
            .unwrap()
        });
        let inflight = {
            let cfg = client_cfg(&handle, 0);
            std::thread::spawn(move || request_with_retry(&cfg, &verify_req("in", SUITE)))
        };
        // Let the request start proving, then drain with a deadline
        // far shorter than its ~5s of injected prover delay.
        std::thread::sleep(Duration::from_millis(300));
        handle.shutdown();
        let summary = handle.join();
        let resp = inflight.join().unwrap().unwrap();
        assert_eq!(
            resp.exit, 3,
            "a cancelled proof is inconclusive, never a verdict: {}",
            resp.output
        );
        assert_eq!(resp.verdict, "resource-limited");
        assert_eq!(summary.fresh, 1, "{summary:?}");
    }

    /// A raw junk line gets a typed protocol error response — the
    /// connection (and daemon) survive to serve a valid request next.
    #[test]
    fn malformed_request_line_gets_typed_error_and_connection_survives() {
        let handle = Server::start(ServeConfig::default()).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"this is not a request\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"error\""), "{line}");
        // Same connection, valid request: still served.
        writer
            .write_all(format!("{}\n", Request { id: "p".into(), op: RequestOp::Ping }.encode()).as_bytes())
            .unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"status\":\"ok\""), "{line}");
        handle.shutdown();
        let summary = handle.join();
        assert_eq!(summary.errors, 1, "{summary:?}");
    }

    /// Acceptance: SIGKILL the daemon *process* mid-request, restart it
    /// on the same journal, and the work completed before the kill
    /// replays from cache while the interrupted request re-proves.
    #[test]
    fn killed_daemon_restarts_warm_from_its_journal() {
        let dir = std::env::temp_dir();
        let tag = format!("cobalt_robustness_{}_kill9", std::process::id());
        let journal = dir.join(format!("{tag}.cobj"));
        let port_file = dir.join(format!("{tag}.port"));
        let suite_file = dir.join(format!("{tag}.cob"));
        for f in [&journal, &port_file] {
            std::fs::remove_file(f).ok();
        }
        std::fs::write(&suite_file, SUITE).unwrap();

        let spawn_daemon = |faults: Option<&str>| {
            let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_cobalt"));
            cmd.args([
                "serve",
                "--port-file",
                port_file.to_str().unwrap(),
                "--journal",
                journal.to_str().unwrap(),
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
            if let Some(f) = faults {
                cmd.env("COBALT_FAULTS", f);
            }
            cmd.spawn().unwrap()
        };
        let await_port = || {
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                if let Ok(s) = std::fs::read_to_string(&port_file) {
                    if s.trim().ends_with(|c: char| c.is_ascii_digit()) && !s.trim().is_empty() {
                        return s.trim().to_string();
                    }
                }
                assert!(std::time::Instant::now() < deadline, "daemon never bound");
                std::thread::sleep(Duration::from_millis(20));
            }
        };
        let cfg_for = |addr: String| ClientConfig {
            addr,
            io_timeout: Duration::from_secs(120),
            retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
        };

        // Daemon 1 (with injected prover delay so the kill lands
        // mid-request): complete one suite, then kill -9 during the
        // second.
        let mut child = spawn_daemon(Some("checker.obligation:delay_ms@20"));
        let cfg = cfg_for(await_port());
        let first = request_with_retry(&cfg, &verify_req("a", SUITE)).unwrap();
        assert_eq!(first.exit, 0, "{}", first.output);
        let interrupted = {
            let cfg = cfg.clone();
            std::thread::spawn(move || request_with_retry(&cfg, &verify_req("b", SUITE_B)))
        };
        std::thread::sleep(Duration::from_millis(250));
        child.kill().unwrap(); // SIGKILL: no drain, no compaction
        child.wait().unwrap();
        assert!(
            interrupted.join().unwrap().is_err(),
            "the killed daemon cannot have answered"
        );

        // Daemon 2, same journal: the completed suite replays from
        // cache; the interrupted one proves fresh — same verdicts.
        std::fs::remove_file(&port_file).ok();
        let mut child = spawn_daemon(None);
        let cfg = cfg_for(await_port());
        let warm = request_with_retry(&cfg, &verify_req("a2", SUITE)).unwrap();
        assert_eq!(warm.exit, 0, "{}", warm.output);
        assert_eq!(
            warm.served,
            ServedFrom::Cache,
            "work completed before the kill must replay warm"
        );
        assert_eq!(warm.output, first.output, "cached replay must be byte-identical");
        let reproved = request_with_retry(&cfg, &verify_req("b2", SUITE_B)).unwrap();
        assert_eq!(reproved.exit, 0, "{}", reproved.output);
        assert_eq!(reproved.served, ServedFrom::Fresh);
        // Graceful shutdown: exit code 0 and a compacted journal.
        let bye = request_with_retry(&cfg, &Request { id: "q".into(), op: RequestOp::Shutdown })
            .unwrap();
        assert_eq!(bye.status, Status::Bye);
        let status = child.wait().unwrap();
        assert!(status.success(), "graceful drain must exit 0: {status:?}");
        for f in [&journal, &port_file, &suite_file] {
            std::fs::remove_file(f).ok();
        }
    }
}

/// The resilient driver without any faults is exactly the strict
/// driver: same output programs, same rewrite count, empty report.
#[test]
fn resilient_driver_is_transparent_without_faults() {
    let engine = Engine::new(LabelEnv::standard());
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    for seed in [3u64, 11] {
        let prog = generate(&GenConfig::sized(25, seed));
        let (strict, n) = engine
            .optimize_program(&prog, &analyses, &passes, 3)
            .unwrap();
        let (resilient, report) = engine.optimize_program_resilient(&prog, &analyses, &passes, 3);
        assert_eq!(
            cobalt::il::pretty_program(&strict),
            cobalt::il::pretty_program(&resilient),
            "seed {seed}"
        );
        assert_eq!(report.applied, n, "seed {seed}");
        assert!(!report.degraded(), "seed {seed}: {:#?}", report.failures);
    }
}
