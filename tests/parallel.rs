//! Parallel obligation discharge (ISSUE 5, DESIGN.md §11).
//!
//! The acceptance contract: `--jobs N` is an implementation detail of
//! *how fast* obligations discharge, never of *what* is proved. These
//! tests pin the determinism half — identical reports, summaries, and
//! journal bytes at any worker count, including under injected worker
//! panics and journal-lock faults — and the degradation half: faults
//! change throughput, not verdicts.

use cobalt::dsl::LabelEnv;
use cobalt::engine::{Engine, OptimizeSession};
use cobalt::il::pretty_program;
use cobalt::verify::{Report, ResumeMode, SemanticMeanings, Session, Verifier};
use cobalt_bench::many_proc_program;
use cobalt_support::journal::Journal;
use cobalt_support::{fault, prop, prop_assert, prop_assert_eq, props};
use std::path::PathBuf;

fn verifier(jobs: usize) -> Verifier {
    Verifier::new(LabelEnv::standard(), SemanticMeanings::standard()).with_jobs(jobs)
}

fn scratch_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "cobalt_parallel_{}_{tag}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

/// Everything observable about a report except wall-clock time.
fn normalize(report: &Report) -> Vec<(String, bool, String, u32, u32, bool, bool)> {
    report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.id.clone(),
                o.proved,
                o.detail.clone(),
                o.attempts,
                o.escalations,
                o.resource_limited,
                o.cached,
            )
        })
        .collect()
}

/// The summary with its trailing ` in <duration>` clause removed.
fn summary_sans_time(report: &Report) -> String {
    let s = report.summary();
    match s.rfind(" in ") {
        Some(at) => s[..at].to_string(),
        None => s,
    }
}

/// Journal record payloads with the (timing-dependent) `elapsed_us`
/// field zeroed; everything else must be byte-identical.
fn journal_sans_time(path: &PathBuf) -> Vec<String> {
    let opened = Journal::open(path).expect("journal reopens");
    assert!(!opened.report.corrupted(), "{:?}", opened.report);
    opened
        .records
        .iter()
        .map(|r| {
            String::from_utf8(r.clone())
                .expect("records are utf-8")
                .split('\t')
                .map(|f| {
                    if f.starts_with("elapsed_us=") {
                        "elapsed_us=0"
                    } else {
                        f
                    }
                })
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

/// Acceptance: over the full built-in registry, a 4-worker verifier
/// produces exactly the reports a sequential one does — same ids in the
/// same order, same verdicts, same attempt/escalation bookkeeping, same
/// summaries (modulo wall clock).
#[test]
fn full_registry_reports_are_identical_at_jobs_one_and_four() {
    let seq = verifier(1);
    let par = verifier(4);
    for a in cobalt::opts::all_analyses() {
        let r1 = seq.verify_analysis(&a).unwrap();
        let r4 = par.verify_analysis(&a).unwrap();
        assert_eq!(normalize(&r1), normalize(&r4), "{}", a.name);
        assert_eq!(summary_sans_time(&r1), summary_sans_time(&r4));
    }
    for o in cobalt::opts::all_optimizations() {
        let r1 = seq.verify_optimization(&o).unwrap();
        let r4 = par.verify_optimization(&o).unwrap();
        assert_eq!(normalize(&r1), normalize(&r4), "{}", o.name);
        assert_eq!(summary_sans_time(&r1), summary_sans_time(&r4));
    }
}

/// The buggy §6 variants fail identically too: an unsound obligation is
/// rejected with the same verdict classification at any worker count
/// (so the CLI exit code — the part a build system scripts against —
/// cannot depend on `--jobs`).
#[test]
fn unsound_rules_are_rejected_identically_at_any_jobs() {
    for o in cobalt::opts::buggy_optimizations() {
        let r1 = verifier(1).verify_optimization(&o).unwrap();
        let r4 = verifier(4).verify_optimization(&o).unwrap();
        assert!(!r1.all_proved(), "{}: buggy rule must fail", o.name);
        assert_eq!(r1.all_proved(), r4.all_proved(), "{}", o.name);
        assert_eq!(
            r1.only_resource_limited_failures(),
            r4.only_resource_limited_failures(),
            "{}: the exit-code classification must not depend on jobs",
            o.name
        );
        // Cancellation may let siblings of the first genuine failure
        // finish differently (proved vs cancelled), but a genuine
        // failure itself can never be masked: every id that failed
        // genuinely under jobs=1 fails under jobs=4 or was cancelled
        // as resource-limited — it is never reported proved-by-luck.
        for (a, b) in r1.outcomes.iter().zip(&r4.outcomes) {
            assert_eq!(a.id, b.id, "{}", o.name);
            if !a.proved && !a.resource_limited {
                assert!(
                    !b.proved,
                    "{}/{}: a genuine failure must not vanish under parallelism",
                    o.name, b.id
                );
            }
        }
    }
}

/// Journaled runs leave byte-identical journals (modulo the recorded
/// wall clock) at jobs 1 and 4: parallel discharge hands outcomes to
/// the journaling sink in obligation order, so append order — and
/// therefore the compacted file — matches sequential mode.
#[test]
fn journal_contents_are_identical_at_jobs_one_and_four() {
    let registry = cobalt::opts::all_optimizations();
    let mut journals = Vec::new();
    for jobs in [1usize, 4] {
        let path = scratch_journal(&format!("bytes_j{jobs}"));
        let mut session =
            Session::with_journal(verifier(jobs), &path, ResumeMode::Resume).unwrap();
        for opt in &registry {
            assert!(session.verify_optimization(opt).unwrap().all_proved());
        }
        session.finish();
        assert!(session.degraded().is_none());
        journals.push(journal_sans_time(&path));
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(
        journals[0], journals[1],
        "journal record streams must not depend on --jobs"
    );
}

/// A worker panic injected mid-batch is retried by the pool supervisor:
/// the report is *identical* to an unfaulted sequential run, not merely
/// equivalent — the obligation that died on its first slot proves on
/// the retry.
#[test]
fn injected_worker_panic_is_retried_to_an_identical_report() {
    let opt = cobalt::opts::const_prop();
    let baseline = verifier(1).verify_optimization(&opt).unwrap();
    let faulted = fault::with_faults("pool.task:panic@3", || {
        verifier(4).verify_optimization(&opt).unwrap()
    });
    assert!(faulted.all_proved(), "{}", faulted.summary());
    assert_eq!(normalize(&baseline), normalize(&faulted));
}

/// A journal-lock fault (simulated contention) degrades the session to
/// uncached verification — verdicts unchanged, `degraded()` set, no
/// journal written — identically at jobs 1 and 4.
#[test]
fn journal_lock_fault_degrades_identically_at_any_jobs() {
    let opt = cobalt::opts::const_prop();
    let baseline = verifier(1).verify_optimization(&opt).unwrap();
    for jobs in [1usize, 4] {
        let path = scratch_journal(&format!("lockfault_j{jobs}"));
        let mut session = fault::with_faults("journal.lock:fail@1", || {
            Session::with_journal(verifier(jobs), &path, ResumeMode::Resume).unwrap()
        });
        let reason = session
            .degraded()
            .unwrap_or_else(|| panic!("jobs={jobs}: lock fault must degrade"))
            .to_string();
        assert!(reason.contains("journal lock unavailable"), "{reason}");
        let report = session.verify_optimization(&opt).unwrap();
        session.finish();
        assert_eq!(
            normalize(&baseline),
            normalize(&report),
            "jobs={jobs}: degraded runs keep their verdicts"
        );
        std::fs::remove_file(&path).ok();
    }
}

/// A parallel run killed mid-suite (dropped without `finish()`) leaves
/// a journal a later run — sequential or parallel — resumes from, with
/// the dead run's obligations fully cached. The in-process mirror of
/// the soak-test round and of `scripts/verify.sh`'s kill stage.
#[test]
fn kill_mid_parallel_run_resumes_from_the_journal() {
    let path = scratch_journal("kill_resume");
    let registry = cobalt::opts::all_optimizations();
    assert!(registry.len() >= 3);

    let mut killed = Session::with_journal(verifier(4), &path, ResumeMode::Resume).unwrap();
    for opt in &registry[..2] {
        assert!(killed.verify_optimization(opt).unwrap().all_proved());
    }
    drop(killed); // the kill: no finish, no compaction — and the lock dies too

    for resume_jobs in [1usize, 4] {
        let mut resumed =
            Session::with_journal(verifier(resume_jobs), &path, ResumeMode::Resume).unwrap();
        assert!(
            !resumed.load_report().corrupted(),
            "in-order append+sync leaves a clean journal: {:?}",
            resumed.load_report()
        );
        for (i, opt) in registry.iter().enumerate() {
            let report = resumed.verify_optimization(opt).unwrap();
            assert!(report.all_proved(), "{}", report.summary());
            if i < 2 {
                assert_eq!(
                    report.cached_count(),
                    report.outcomes.len(),
                    "jobs={resume_jobs}, {}: proved before the kill",
                    opt.name
                );
            }
        }
        drop(resumed); // keep the journal warm for the second pass
    }
    std::fs::remove_file(&path).ok();
}

/// Runs a full journaled optimization of `prog` at the given worker
/// count and returns everything observable: program text, the
/// machine-readable report, and the compacted journal bytes.
fn optimize_observables(
    prog: &cobalt::il::Program,
    jobs: usize,
    tag: &str,
) -> (String, String, Vec<u8>) {
    let path = scratch_journal(tag);
    let mut session = OptimizeSession::new(Engine::new(LabelEnv::standard()))
        .with_jobs(jobs)
        .with_journal(&path, ResumeMode::Resume);
    assert!(session.is_journaled(), "{:?}", session.degraded());
    let (out, report) = session.optimize_program(
        prog,
        &cobalt::opts::all_analyses(),
        &cobalt::opts::default_pipeline(),
        3,
    );
    session.finish();
    assert!(session.degraded().is_none(), "{:?}", session.degraded());
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (pretty_program(&out), report.json_lines(), bytes)
}

/// Acceptance (ISSUE 7): over a 12-procedure program, the optimized
/// program bytes, the pipeline report, and the journal bytes are
/// byte-identical at jobs 1 and 4 — `--jobs` may only change
/// wall-clock, never output. (Engine journal records carry no
/// timestamps at all, so this is raw `==`, no normalization.)
#[test]
fn optimize_output_report_and_journal_bytes_identical_at_jobs_one_and_four() {
    let prog = many_proc_program(12, 30, 7);
    let (p1, r1, j1) = optimize_observables(&prog, 1, "opt_bytes_j1");
    let (p4, r4, j4) = optimize_observables(&prog, 4, "opt_bytes_j4");
    assert_eq!(p1, p4, "optimized program must not depend on --jobs");
    assert_eq!(r1, r4, "pipeline report must not depend on --jobs");
    assert_eq!(j1, j4, "journal bytes must not depend on --jobs");
}

/// Cross-run determinism regression (ISSUE 7 satellite): dataflow fact
/// sets iterate in canonical order, so two runs in fresh processes —
/// here, fresh engines in one process, which with the former
/// `RandomState`-hashed fact sets already diverged — produce identical
/// bytes. Guards against reintroducing iteration-order dependence.
#[test]
fn optimize_runs_are_deterministic_across_engines() {
    let prog = many_proc_program(6, 35, 19);
    let render = || {
        let (out, report) = Engine::new(LabelEnv::standard()).optimize_program_resilient(
            &prog,
            &cobalt::opts::all_analyses(),
            &cobalt::opts::default_pipeline(),
            3,
        );
        format!("{}\n{}", report.json_lines(), pretty_program(&out))
    };
    let first = render();
    for _ in 0..3 {
        assert_eq!(first, render(), "optimization must be run-deterministic");
    }
}

/// A worker panic injected into the optimization pool is retried by the
/// supervisor; if the pass dies again the procedure is quarantined
/// whole — but a one-shot fault must yield output identical to the
/// clean sequential run.
#[test]
fn optimize_worker_panic_is_retried_to_identical_output() {
    let prog = many_proc_program(8, 25, 3);
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    let (baseline, base_report) = Engine::new(LabelEnv::standard())
        .optimize_program_resilient(&prog, &analyses, &passes, 3);
    let mut session = OptimizeSession::new(Engine::new(LabelEnv::standard())).with_jobs(4);
    let (out, report) = fault::with_faults("pool.task:panic@2", || {
        session.optimize_program(&prog, &analyses, &passes, 3)
    });
    assert_eq!(pretty_program(&baseline), pretty_program(&out));
    assert_eq!(base_report.json_lines(), report.json_lines());
}

/// A journal written at one worker count warms a resume at another:
/// every procedure replays as cached, and the replayed program is
/// byte-identical to the one the cold run emitted.
#[test]
fn optimize_journal_warms_across_jobs_counts() {
    let prog = many_proc_program(10, 25, 11);
    let analyses = cobalt::opts::all_analyses();
    let passes = cobalt::opts::default_pipeline();
    let path = scratch_journal("opt_warm_cross");
    let mut cold = OptimizeSession::new(Engine::new(LabelEnv::standard()))
        .with_jobs(4)
        .with_journal(&path, ResumeMode::Resume);
    let (cold_out, cold_report) = cold.optimize_program(&prog, &analyses, &passes, 3);
    cold.finish();
    assert_eq!(cold_report.cached, 0);

    let mut warm = OptimizeSession::new(Engine::new(LabelEnv::standard()))
        .with_jobs(1)
        .with_journal(&path, ResumeMode::Resume);
    let (warm_out, warm_report) = warm.optimize_program(&prog, &analyses, &passes, 3);
    warm.finish();
    assert_eq!(
        warm_report.cached,
        prog.procs.len(),
        "{}",
        warm_report.summary()
    );
    assert_eq!(warm_report.applied, cold_report.applied);
    assert_eq!(pretty_program(&cold_out), pretty_program(&warm_out));
    std::fs::remove_file(&path).ok();
}

props! {
    config = prop::Config::with_cases(12);

    /// Seeded equivalence sweep: any rule of the registry, any worker
    /// count 1..=4, any of the fault regimes the supervisor must absorb
    /// (none / a one-shot worker panic at a random obligation / lock
    /// contention at session open) — the normalized report always
    /// equals the clean sequential baseline.
    fn any_rule_any_jobs_any_fault_matches_sequential(
        rule in 0usize..64,
        jobs in 1usize..5,
        regime in 0u8..3,
        panic_at in 1u64..7,
    ) {
        let registry = cobalt::opts::all_optimizations();
        let opt = &registry[rule % registry.len()];
        let baseline = verifier(1).verify_optimization(opt).unwrap();
        let (normalized, degraded_ok) = match regime {
            // No faults: pure jobs sweep.
            0 => {
                let r = verifier(jobs).verify_optimization(opt).unwrap();
                (normalize(&r), true)
            }
            // One worker panic, somewhere in the batch; the supervisor
            // retries it (a fault arg past the batch simply never
            // fires — also a valid case).
            1 => {
                let spec = format!("pool.task:panic@{panic_at}");
                let r = fault::with_faults(&spec, || {
                    verifier(jobs).verify_optimization(opt).unwrap()
                });
                (normalize(&r), true)
            }
            // Lock contention at open: journaling degrades, proving
            // doesn't.
            _ => {
                let path = scratch_journal(&format!("prop_{rule}_{jobs}_{panic_at}"));
                let mut session = fault::with_faults("journal.lock:fail@1", || {
                    Session::with_journal(verifier(jobs), &path, ResumeMode::Resume).unwrap()
                });
                let degraded = session.degraded().is_some();
                let r = session.verify_optimization(opt).unwrap();
                session.finish();
                std::fs::remove_file(&path).ok();
                (normalize(&r), degraded)
            }
        };
        prop_assert!(degraded_ok, "lock fault must mark the session degraded");
        prop_assert_eq!(normalize(&baseline), normalized);
    }

    /// Seeded byte-identity sweep for the optimizer: any generated
    /// multi-procedure program, any worker count 1..=4 — the optimized
    /// program and pipeline report always equal the sequential
    /// baseline byte-for-byte.
    fn optimize_any_seed_any_jobs_matches_sequential(
        seed in 0u64..1_000,
        jobs in 1usize..5,
        procs in 2usize..7,
    ) {
        let prog = many_proc_program(procs, 20, seed);
        let analyses = cobalt::opts::all_analyses();
        let passes = cobalt::opts::default_pipeline();
        let (base_out, base_report) = Engine::new(LabelEnv::standard())
            .optimize_program_resilient(&prog, &analyses, &passes, 2);
        let mut session =
            OptimizeSession::new(Engine::new(LabelEnv::standard())).with_jobs(jobs);
        let (out, report) = session.optimize_program(&prog, &analyses, &passes, 2);
        prop_assert_eq!(pretty_program(&base_out), pretty_program(&out));
        prop_assert_eq!(base_report.json_lines(), report.json_lines());
    }
}
