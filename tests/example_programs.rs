//! The shipped example programs parse, validate, run, and optimize —
//! keeping `examples/programs/` honest.

use cobalt::dsl::LabelEnv;
use cobalt::engine::Engine;
use cobalt::il::{parse_program, validate, Interp, Value};

fn load(name: &str) -> cobalt::il::Program {
    let src = std::fs::read_to_string(format!("examples/programs/{name}")).unwrap();
    let prog = parse_program(&src).unwrap();
    validate(&prog).unwrap();
    prog
}

#[test]
fn fib_computes_fibonacci() {
    let prog = load("fib.il");
    let fib = |n: i64| Interp::new(&prog).run(n).unwrap();
    assert_eq!(fib(0), Value::Int(0));
    assert_eq!(fib(1), Value::Int(1));
    assert_eq!(fib(10), Value::Int(55));
}

#[test]
fn example_programs_optimize_and_behave() {
    let engine = Engine::new(LabelEnv::standard());
    for name in ["fib.il", "redundant.il", "pointers.il"] {
        let prog = load(name);
        let (optimized, _) = engine
            .optimize_program(
                &prog,
                &cobalt::opts::all_analyses(),
                &cobalt::opts::default_pipeline(),
                4,
            )
            .unwrap();
        for arg in [0, 1, 7] {
            assert_eq!(
                Interp::new(&prog).run(arg).unwrap(),
                Interp::new(&optimized).run(arg).unwrap(),
                "{name} arg {arg}"
            );
        }
    }
}

#[test]
fn redundant_program_actually_shrinks() {
    let engine = Engine::new(LabelEnv::standard());
    let prog = load("redundant.il");
    let (optimized, n) = engine
        .optimize_program(
            &prog,
            &cobalt::opts::all_analyses(),
            &cobalt::opts::default_pipeline(),
            4,
        )
        .unwrap();
    assert!(n >= 3, "only {n} rewrites");
    let text = cobalt::il::pretty_program(&optimized);
    // The duplicate x*x computation is gone.
    assert!(text.matches("x * x").count() <= 1, "{text}");
}

#[test]
fn pointer_program_benefits_from_taint_analysis() {
    let engine = Engine::new(LabelEnv::standard());
    let prog = load("pointers.il");
    // Without the analysis, the second load stays.
    let (without, _) = engine
        .optimize_program(&prog, &[], &[cobalt::opts::load_elim()], 2)
        .unwrap();
    let (with, _) = engine
        .optimize_program(
            &prog,
            &cobalt::opts::all_analyses(),
            &[cobalt::opts::load_elim()],
            2,
        )
        .unwrap();
    let loads = |p: &cobalt::il::Program| {
        cobalt::il::pretty_program(p).matches("*p").count()
    };
    assert!(loads(&with) < loads(&without), "taint info should enable load elimination");
}
