//! The claims in docs/TUTORIAL.md, kept honest by CI.

use cobalt::dsl::{parse_suite, LabelEnv};
use cobalt::verify::{SemanticMeanings, Verifier};

const TUTORIAL_OPT: &str = "forward zero_branch_prop {
    stmt(Y := 0)
    followed by !mayDef(Y)
    until if Y goto I1 else I2 => if 0 goto I1 else I2
    with witness eta(Y) == 0
}";

#[test]
fn tutorial_optimization_parses_and_proves() {
    let suite = parse_suite(TUTORIAL_OPT).unwrap();
    assert_eq!(suite.optimizations.len(), 1);
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let report = verifier
        .verify_optimization(&suite.optimizations[0])
        .unwrap();
    assert!(report.all_proved(), "{:?}", report.failures());
}

#[test]
fn tutorial_optimization_runs() {
    use cobalt::engine::{AnalyzedProc, Engine};
    let suite = parse_suite(TUTORIAL_OPT).unwrap();
    let engine = Engine::new(LabelEnv::standard());
    let prog = cobalt::il::parse_program(
        "proc main(x) {
            decl flag;
            flag := 0;
            if flag goto 3 else 4;
            return x;
            return flag;
         }",
    )
    .unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, applied) = engine.apply(&ap, &suite.optimizations[0]).unwrap();
    assert_eq!(applied.len(), 1);
    assert_eq!(optimized.stmts[2].to_string(), "if 0 goto 3 else 4");
}

#[test]
fn tutorial_typo_variant_is_rejected_by_lint_before_proving() {
    let suite = parse_suite(
        "forward zero_branch_typo {
            stmt(Y := 0)
            followed by !mayDef(Y)
            until if Y goto I1 else I2 => if C goto I1 else I2
            with witness eta(Y) == 0
         }",
    )
    .unwrap();
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let err = verifier
        .verify_optimization(&suite.optimizations[0])
        .expect_err("the unbound template variable must gate");
    let cobalt::verify::VerifyError::Lint(diags) = err else {
        panic!("expected VerifyError::Lint, got {err}");
    };
    assert!(
        diags.iter().any(|d| d.code == "CL001"),
        "{}",
        diags.render_human()
    );
}

#[test]
fn tutorial_sloppy_variant_fails_as_described() {
    let suite = parse_suite(
        "forward sloppy {
            stmt(Y := 0)
            followed by true
            until if Y goto I1 else I2 => if 0 goto I1 else I2
            with witness eta(Y) == 0
         }",
    )
    .unwrap();
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let report = verifier
        .verify_optimization(&suite.optimizations[0])
        .unwrap();
    assert!(!report.all_proved());
    assert!(report.failures().contains(&"F2/assign_var"));
}
