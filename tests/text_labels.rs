//! End-to-end test of text-defined labels (paper §2.1.3): a suite file
//! defines its own `case`-predicate label, an optimization uses it, the
//! engine runs it, and the checker proves it.

use cobalt::dsl::parse_suite;
use cobalt::engine::{AnalyzedProc, Engine};
use cobalt::il::parse_program;
use cobalt::verify::{SemanticMeanings, Verifier};

/// A user redefines `mayDef` under a new name with the conservative
/// §2.1.3 semantics and writes constant propagation against it.
const SUITE: &str = "
label myMayDef(Y) {
    case *P := ...   => true
    case X := F(Z)   => true
    case X := F(C)   => true
    else             => syntacticDef(Y)
}

forward my_const_prop {
    stmt(Y := C)
    followed by !myMayDef(Y)
    until X := Y => X := C
    with witness eta(Y) == C
}
";

#[test]
fn user_label_runs_in_the_engine() {
    let suite = parse_suite(SUITE).unwrap();
    assert_eq!(suite.labels.len(), 1);
    let env = suite.label_env();
    let engine = Engine::new(env);
    let prog = parse_program("proc main(x) { a := 2; b := 3; c := a; return c; }").unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (optimized, applied) = engine.apply(&ap, &suite.optimizations[0]).unwrap();
    assert_eq!(applied.len(), 1);
    assert_eq!(optimized.stmts[2].to_string(), "c := 2");
}

#[test]
fn user_label_blocks_across_pointer_stores() {
    let suite = parse_suite(SUITE).unwrap();
    let engine = Engine::new(suite.label_env());
    // The conservative label treats *p := 9 as defining anything.
    let prog = parse_program(
        "proc main(x) {
            decl a;
            decl p;
            decl c;
            a := 2;
            p := &a;
            *p := 9;
            c := a;
            return c;
         }",
    )
    .unwrap();
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (_, applied) = engine.apply(&ap, &suite.optimizations[0]).unwrap();
    assert!(applied.is_empty());
}

#[test]
fn user_label_optimization_is_provable() {
    // The checker compiles the user's label definition into the
    // obligations ("optimization-dependent axioms … generated
    // automatically from the Cobalt label definitions", §5.1).
    let suite = parse_suite(SUITE).unwrap();
    let verifier = Verifier::new(suite.label_env(), SemanticMeanings::standard());
    let report = verifier
        .verify_optimization(&suite.optimizations[0])
        .unwrap();
    assert!(report.all_proved(), "{:?}", report.failures());
}

#[test]
fn unsound_user_label_is_caught() {
    // A label that wrongly claims calls never define anything makes the
    // optimization unsound; the checker rejects it.
    let suite = parse_suite(
        "label weakMayDef(Y) {
            case X := F(Z) => false
            case X := F(C) => false
            else => syntacticDef(Y)
         }
         forward sloppy_prop {
            stmt(Y := C)
            followed by !weakMayDef(Y)
            until X := Y => X := C
            with witness eta(Y) == C
         }",
    )
    .unwrap();
    let verifier = Verifier::new(suite.label_env(), SemanticMeanings::standard());
    let report = verifier
        .verify_optimization(&suite.optimizations[0])
        .unwrap();
    assert!(!report.all_proved());
    // The failing shapes are exactly the calls the label lied about.
    assert!(report
        .failures()
        .iter()
        .all(|id| id.contains("call") || id.contains("store")),
        "{:?}", report.failures());
}
