//! Experiment E2: the debugging story of paper §6.
//!
//! The plausible-but-unsound redundant-load elimination (which forgot
//! that a direct assignment can change `*P` through aliasing) is
//! rejected by the checker with a counterexample context; the fixed,
//! taint-aware version is proven sound; and the engine demonstrates the
//! concrete miscompilation the bug would have caused.

use cobalt::dsl::LabelEnv;
use cobalt::engine::{AnalyzedProc, Engine};
use cobalt::il::{Interp, Value};
use cobalt::verify::{SemanticMeanings, Verifier};

fn verifier() -> Verifier {
    Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
}

#[test]
fn buggy_load_elimination_is_rejected() {
    let report = verifier()
        .verify_optimization(&cobalt::opts::buggy::load_elim_no_alias())
        .unwrap();
    assert!(!report.all_proved(), "the unsound variant must not verify");
    // The failure shows up in witness preservation (F2): a direct
    // assignment shape breaks η(X) = η(*P).
    let failures = report.failures();
    assert!(
        failures.iter().any(|id| id.starts_with("F2/assign")),
        "expected an F2 assignment failure, got {failures:?}"
    );
    // A counterexample context is reported (paper §7).
    let failed = report.outcomes.iter().find(|o| !o.proved).unwrap();
    assert!(!failed.detail.is_empty());
}

#[test]
fn fixed_load_elimination_is_proved() {
    let report = verifier()
        .verify_optimization(&cobalt::opts::load_elim())
        .unwrap();
    assert!(report.all_proved(), "{:?}", report.failures());
}

#[test]
fn the_bug_is_a_real_miscompilation() {
    let prog = cobalt::opts::buggy::counterexample_program();
    assert_eq!(Interp::new(&prog).run(0).unwrap(), Value::Int(9));

    let engine = Engine::new(LabelEnv::standard());
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (bad, applied) = engine
        .apply(&ap, &cobalt::opts::buggy::load_elim_no_alias())
        .unwrap();
    assert!(!applied.is_empty());
    let bad_prog = cobalt::il::Program::new(vec![bad]);
    assert_eq!(
        Interp::new(&bad_prog).run(0).unwrap(),
        Value::Int(7),
        "the buggy optimization silently changes the result"
    );
}

#[test]
fn translation_validation_also_catches_it_but_only_per_run() {
    // The alternative trust story: validate each compile. It catches
    // this run, but gives no once-and-for-all guarantee.
    let prog = cobalt::opts::buggy::counterexample_program();
    let engine = Engine::new(LabelEnv::standard());
    let ap = AnalyzedProc::new(prog.main().unwrap().clone()).unwrap();
    let (bad, _) = engine
        .apply(&ap, &cobalt::opts::buggy::load_elim_no_alias())
        .unwrap();
    let report = cobalt::tv::validate_proc(prog.main().unwrap(), &bad).unwrap();
    assert!(!report.validated());
}
