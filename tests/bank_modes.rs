//! Bank ownership modes (ISSUE 6, DESIGN.md §12).
//!
//! The acceptance contract: [`BankMode`] is an implementation detail of
//! *how cheaply* a batch's obligations are built, never of *what* is
//! proved or reported. Fresh-bank-per-obligation is the oracle; the
//! batch-shared default must match it in reports, summaries, exit-code
//! classification, journal bytes, and session fingerprints — at any
//! worker count, for sound and buggy rules alike, with or without
//! injected faults.

use cobalt::dsl::LabelEnv;
use cobalt::logic::Limits;
use cobalt::verify::{
    fingerprint_obligation, obligations_for_optimization_with, BankMode, Report, ResumeMode,
    RetryPolicy, SemanticMeanings, Session, Verifier,
};
use cobalt_support::journal::Journal;
use cobalt_support::{fault, prop, prop_assert_eq, props};
use std::path::PathBuf;
use std::time::Duration;

fn verifier(jobs: usize, mode: BankMode) -> Verifier {
    Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
        .with_jobs(jobs)
        .with_bank_mode(mode)
}

fn scratch_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "cobalt_bankmode_{}_{tag}.cobj",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    path
}

/// Everything observable about a report except wall-clock time.
fn normalize(report: &Report) -> Vec<(String, bool, String, u32, u32, bool, bool)> {
    report
        .outcomes
        .iter()
        .map(|o| {
            (
                o.id.clone(),
                o.proved,
                o.detail.clone(),
                o.attempts,
                o.escalations,
                o.resource_limited,
                o.cached,
            )
        })
        .collect()
}

/// The summary with its trailing ` in <duration>` clause removed.
fn summary_sans_time(report: &Report) -> String {
    let s = report.summary();
    match s.rfind(" in ") {
        Some(at) => s[..at].to_string(),
        None => s,
    }
}

/// Journal record payloads with the (timing-dependent) `elapsed_us`
/// field zeroed; everything else must be byte-identical.
fn journal_sans_time(path: &PathBuf) -> Vec<String> {
    let opened = Journal::open(path).expect("journal reopens");
    assert!(!opened.report.corrupted(), "{:?}", opened.report);
    opened
        .records
        .iter()
        .map(|r| {
            String::from_utf8(r.clone())
                .expect("records are utf-8")
                .split('\t')
                .map(|f| {
                    if f.starts_with("elapsed_us=") {
                        "elapsed_us=0"
                    } else {
                        f
                    }
                })
                .collect::<Vec<_>>()
                .join("\t")
        })
        .collect()
}

/// Acceptance: over the full built-in registry, the shared-bank default
/// produces exactly the reports the fresh-bank oracle does — same ids
/// in the same order, same verdicts, same attempt bookkeeping, same
/// summaries (modulo wall clock) — at one worker and at four.
#[test]
fn full_registry_reports_are_identical_across_bank_modes() {
    for jobs in [1usize, 4] {
        let fresh = verifier(jobs, BankMode::PerObligation);
        let shared = verifier(jobs, BankMode::BatchShared);
        for a in cobalt::opts::all_analyses() {
            let rf = fresh.verify_analysis(&a).unwrap();
            let rs = shared.verify_analysis(&a).unwrap();
            assert_eq!(normalize(&rf), normalize(&rs), "{} jobs={jobs}", a.name);
            assert_eq!(summary_sans_time(&rf), summary_sans_time(&rs));
        }
        for o in cobalt::opts::all_optimizations() {
            let rf = fresh.verify_optimization(&o).unwrap();
            let rs = shared.verify_optimization(&o).unwrap();
            assert_eq!(normalize(&rf), normalize(&rs), "{} jobs={jobs}", o.name);
            assert_eq!(summary_sans_time(&rf), summary_sans_time(&rs));
        }
    }
}

/// The buggy §6 variants fail identically in both modes: same verdict,
/// same exit-code classification, same failure details — including the
/// open-branch counterexample context, which must render from symbol
/// names, never from raw bank-layout-dependent ids.
#[test]
fn unsound_rules_are_rejected_identically_across_bank_modes() {
    for o in cobalt::opts::buggy_optimizations() {
        let rf = verifier(1, BankMode::PerObligation)
            .verify_optimization(&o)
            .unwrap();
        let rs = verifier(1, BankMode::BatchShared)
            .verify_optimization(&o)
            .unwrap();
        assert!(!rf.all_proved(), "{}: buggy rule must fail", o.name);
        assert_eq!(normalize(&rf), normalize(&rs), "{}", o.name);
        assert_eq!(
            rf.only_resource_limited_failures(),
            rs.only_resource_limited_failures(),
            "{}: the exit-code classification must not depend on the bank mode",
            o.name
        );
    }
}

/// Golden pin of the §6 counterexample context: the report's failure
/// detail is identical in both bank modes, names the witness terms
/// symbolically, and never leaks a raw `TermId` (whose numbering is
/// bank-layout-dependent and would differ under a shared base).
#[test]
fn open_branch_context_is_golden_across_bank_modes() {
    let buggy = cobalt::opts::buggy::load_elim_no_alias();
    let details: Vec<String> = [BankMode::PerObligation, BankMode::BatchShared]
        .into_iter()
        .map(|mode| {
            let report = verifier(1, mode).verify_optimization(&buggy).unwrap();
            let failed = report
                .outcomes
                .iter()
                .find(|o| !o.proved && o.id.starts_with("F2/assign"))
                .expect("the unsound variant must fail witness preservation");
            failed.detail.clone()
        })
        .collect();
    assert_eq!(
        details[0], details[1],
        "counterexample context must not depend on the bank mode"
    );
    let detail = &details[0];
    assert!(
        detail.contains("context:"),
        "a counterexample context is reported: {detail}"
    );
    assert!(
        detail.contains("pv$"),
        "context names pattern-variable constants symbolically: {detail}"
    );
    assert!(
        !detail.contains("TermId("),
        "no raw term ids may leak into user-visible output: {detail}"
    );
}

/// Journaled runs leave byte-identical journals (modulo the recorded
/// wall clock) in both modes: obligation fingerprints hash the
/// *rendered* hypotheses and goal, so the bank layout underneath them
/// is invisible.
#[test]
fn journal_contents_are_identical_across_bank_modes() {
    let registry = cobalt::opts::all_optimizations();
    let mut journals = Vec::new();
    for mode in [BankMode::PerObligation, BankMode::BatchShared] {
        let path = scratch_journal(&format!("bytes_{mode:?}"));
        let mut session =
            Session::with_journal(verifier(1, mode), &path, ResumeMode::Resume).unwrap();
        for opt in &registry {
            assert!(session.verify_optimization(opt).unwrap().all_proved());
        }
        session.finish();
        assert!(session.degraded().is_none());
        journals.push(journal_sans_time(&path));
        std::fs::remove_file(&path).ok();
    }
    assert_eq!(
        journals[0], journals[1],
        "journal record streams must not depend on the bank mode"
    );
}

/// Fingerprints are equal obligation-by-obligation across modes, and a
/// journal written before the shared bank landed (simulated by a
/// fresh-bank session) warm-resumes fully cached under the shared-bank
/// default — the no-cache-invalidation acceptance criterion.
#[test]
fn fingerprints_survive_the_bank_mode_switch() {
    let opt = cobalt::opts::const_prop();
    let env = LabelEnv::standard();
    let meanings = SemanticMeanings::standard();
    let tiers = RetryPolicy::default().tiers;
    let fresh = obligations_for_optimization_with(&opt, &env, &meanings, BankMode::PerObligation)
        .unwrap();
    let shared = obligations_for_optimization_with(&opt, &env, &meanings, BankMode::BatchShared)
        .unwrap();
    assert_eq!(fresh.len(), shared.len());
    for (f, s) in fresh.iter().zip(&shared) {
        assert_eq!(f.id, s.id);
        assert_eq!(
            fingerprint_obligation("rule-src", f, &tiers),
            fingerprint_obligation("rule-src", s, &tiers),
            "{}: fingerprints must be bank-layout-independent",
            f.id
        );
    }

    // Warm resume across the switch.
    let path = scratch_journal("resume_across_modes");
    let mut cold = Session::with_journal(
        verifier(1, BankMode::PerObligation),
        &path,
        ResumeMode::Resume,
    )
    .unwrap();
    assert!(cold.verify_optimization(&opt).unwrap().all_proved());
    cold.finish();
    drop(cold);
    let mut warm = Session::with_journal(
        verifier(1, BankMode::BatchShared),
        &path,
        ResumeMode::Resume,
    )
    .unwrap();
    let report = warm.verify_optimization(&opt).unwrap();
    assert!(report.all_proved(), "{}", report.summary());
    assert_eq!(
        report.cached_count(),
        report.outcomes.len(),
        "every outcome journaled under fresh banks must replay under shared banks"
    );
    warm.finish();
    std::fs::remove_file(&path).ok();
}

/// Regression for the done-instance bookkeeping bug: an instantiation
/// discarded by a tripped term budget must be *retried* on the next
/// limit tier, not remembered as already-done. Under a starved tier 0
/// the rule still proves — via escalation — in both bank modes.
#[test]
fn budget_tripped_instantiations_retry_and_prove_on_escalation() {
    let starved = RetryPolicy {
        tiers: vec![
            Limits {
                max_splits: 500,
                max_inst_rounds: 2,
                max_terms: 1,
                deadline: Some(Duration::from_millis(250)),
            },
            Limits::default(),
        ],
        report_deadline: None,
    };
    let opt = cobalt::opts::const_prop();
    for mode in [BankMode::PerObligation, BankMode::BatchShared] {
        let report = verifier(1, mode)
            .with_retry_policy(starved.clone())
            .verify_optimization(&opt)
            .unwrap();
        assert!(report.all_proved(), "{mode:?}: {}", report.summary());
        let escalated: u32 = report.outcomes.iter().map(|o| o.escalations).sum();
        assert!(
            escalated >= 1,
            "{mode:?}: a one-term tier must trip and escalate at least once"
        );
    }
}

props! {
    config = prop::Config::with_cases(12);

    /// Seeded equivalence sweep: any rule of the registry (sound and
    /// buggy), any worker count 1 or 4, with or without an injected
    /// one-shot worker panic — the shared-bank report always equals the
    /// fresh-bank report under the same regime. Buggy rules run
    /// sequentially only: under `--jobs 4` the cancellation *timing*
    /// after the first genuine failure is legitimately nondeterministic
    /// (see `tests/parallel.rs`), so outcome-for-outcome equality
    /// between two distinct runs is not a sound expectation there.
    fn any_rule_any_jobs_any_fault_matches_across_modes(
        rule in 0usize..64,
        four_jobs in 0u8..2,
        faulted in 0u8..2,
        panic_at in 1u64..7,
    ) {
        let jobs = if four_jobs == 1 { 4 } else { 1 };
        let mut registry = cobalt::opts::all_optimizations();
        if jobs == 1 {
            registry.extend(cobalt::opts::buggy_optimizations());
        }
        let opt = &registry[rule % registry.len()];
        let run = |mode: BankMode| {
            let v = verifier(jobs, mode);
            if faulted == 1 && jobs > 1 {
                let spec = format!("pool.task:panic@{panic_at}");
                fault::with_faults(&spec, || v.verify_optimization(opt).unwrap())
            } else {
                v.verify_optimization(opt).unwrap()
            }
        };
        let rf = run(BankMode::PerObligation);
        let rs = run(BankMode::BatchShared);
        prop_assert_eq!(normalize(&rf), normalize(&rs));
        prop_assert_eq!(summary_sans_time(&rf), summary_sans_time(&rs));
    }
}
