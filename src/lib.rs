//! # Cobalt
//!
//! A complete, from-scratch Rust reproduction of *Sorin Lerner, Todd
//! Millstein & Craig Chambers, "Automatically Proving the Correctness
//! of Compiler Optimizations", PLDI 2003* — the Cobalt system.
//!
//! Cobalt is a domain-specific language for writing compiler
//! optimizations as guarded rewrite rules over a C-like intermediate
//! language. Optimizations written in Cobalt are:
//!
//! * **executable** — a generic dataflow engine runs them directly
//!   ([`engine`]), no reimplementation needed;
//! * **provable** — an automatic checker generates a small set of
//!   non-inductive proof obligations per optimization and discharges
//!   them with an automatic theorem prover ([`verify`], [`logic`]),
//!   establishing soundness *once and for all*, for every input program.
//!
//! The workspace members re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`il`] | `cobalt-il` | the intermediate language, CFGs, interpreter, program generator |
//! | [`logic`] | `cobalt-logic` | the automatic theorem prover (the Simplify stand-in) |
//! | [`dsl`] | `cobalt-dsl` | the Cobalt language: patterns, guards, labels, witnesses |
//! | [`engine`] | `cobalt-engine` | the optimization execution engine (§5.2) |
//! | [`verify`] | `cobalt-verify` | the soundness checker (§4, §5.1) |
//! | [`opts`] | `cobalt-opts` | the optimization suite (§2, §6) |
//! | [`lint`] | `cobalt-lint` | static analysis: rule and IL linters gating the prover |
//! | [`tv`] | `cobalt-tv` | the translation-validation baseline (§1, §8) |
//! | [`serve`] | `cobalt-serve` | the verification daemon: shared proof cache, load shedding, graceful drain |
//!
//! # Quickstart
//!
//! Prove constant propagation sound, then run it:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use cobalt::dsl::LabelEnv;
//! use cobalt::engine::{AnalyzedProc, Engine};
//! use cobalt::il::parse_program;
//! use cobalt::verify::{SemanticMeanings, Verifier};
//!
//! let const_prop = cobalt::opts::const_prop();
//!
//! // 1. Prove it sound — once, for all programs.
//! let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
//! assert!(verifier.verify_optimization(&const_prop)?.all_proved());
//!
//! // 2. Run it on the paper's §5.2 example.
//! let prog = parse_program("proc main(x) { a := 2; b := 3; c := a; return c; }")?;
//! let engine = Engine::new(LabelEnv::standard());
//! let ap = AnalyzedProc::new(prog.main().unwrap().clone())?;
//! let (optimized, _) = engine.apply(&ap, &const_prop)?;
//! assert_eq!(optimized.stmts[2].to_string(), "c := 2");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod synth;

pub use cobalt_dsl as dsl;
pub use cobalt_engine as engine;
pub use cobalt_il as il;
pub use cobalt_lint as lint;
pub use cobalt_logic as logic;
pub use cobalt_opts as opts;
pub use cobalt_serve as serve;
pub use cobalt_tv as tv;
pub use cobalt_verify as verify;
