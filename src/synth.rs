//! Counterexample program synthesis for rejected optimizations —
//! the future-work item of paper §7:
//!
//! > "When Simplify cannot prove a given proposition, it returns a
//! > counterexample context… An interesting approach would be to use
//! > this counterexample context to synthesize a small
//! > intermediate-language program that illustrates a potential
//! > unsoundness of the given optimization."
//!
//! This module realizes the goal by search rather than by decoding the
//! prover's open branch: it generates random programs biased toward the
//! pointer-heavy shapes that unsound optimizations typically mishandle,
//! applies the optimization, and differentially executes original vs
//! transformed. A hit is then *minimized* by replacing statements with
//! `skip` while the miscompilation persists, yielding a small witness
//! program a compiler writer can read — the same artifact §6's
//! narrative reconstructs by hand.

use cobalt_dsl::{LabelEnv, Optimization};
use cobalt_engine::{AnalyzedProc, Engine};
use cobalt_il::{generate, GenConfig, Interp, Program, Stmt, Value};

/// A concrete demonstration that an optimization is unsound.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The (minimized) input program.
    pub program: Program,
    /// The transformed program.
    pub transformed: Program,
    /// The input on which the two disagree.
    pub arg: i64,
    /// What the original returns.
    pub original_result: Value,
    /// What the transformed program returns (or a description of its
    /// failure).
    pub transformed_result: Result<Value, String>,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "// main({}) returns {} before the optimization,", self.arg, self.original_result)?;
        match &self.transformed_result {
            Ok(v) => writeln!(f, "// but {v} after it:")?,
            Err(e) => writeln!(f, "// but fails ({e}) after it:")?,
        }
        write!(f, "{}", cobalt_il::pretty_program(&self.program))
    }
}

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of random programs to try.
    pub tries: u64,
    /// Statements per generated program.
    pub program_size: usize,
    /// Inputs to run each candidate on.
    pub args: Vec<i64>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            tries: 3_000,
            program_size: 14,
            args: vec![0, 1, 2, 5],
            seed: 0,
        }
    }
}

/// Searches for a program the optimization miscompiles.
///
/// Returns `None` if no counterexample is found within the budget —
/// which is evidence of soundness only in the empirical sense; the real
/// guarantee comes from `cobalt-verify`.
pub fn find_counterexample(opt: &Optimization, config: &SynthConfig) -> Option<Counterexample> {
    let engine = Engine::new(LabelEnv::standard());
    for t in 0..config.tries {
        let gen_cfg = GenConfig {
            num_stmts: config.program_size,
            num_vars: 5,
            num_helpers: 0,
            pointer_ratio: 0.45,
            branch_ratio: 0.05,
            call_ratio: 0.0,
            seed: config.seed.wrapping_add(t),
        };
        let prog = generate(&gen_cfg);
        if let Some(cx) = try_program(&engine, opt, &prog, &config.args) {
            return Some(minimize(&engine, opt, cx, &config.args));
        }
    }
    None
}

/// Applies the optimization and looks for a behavioural difference.
fn try_program(
    engine: &Engine,
    opt: &Optimization,
    prog: &Program,
    args: &[i64],
) -> Option<Counterexample> {
    let main = prog.main()?;
    let ap = AnalyzedProc::new(main.clone()).ok()?;
    let (new_main, applied) = engine.apply(&ap, opt).ok()?;
    if applied.is_empty() {
        return None;
    }
    let transformed = prog.with_proc_replaced(new_main);
    for &arg in args {
        let orig = Interp::new(prog).with_fuel(100_000).run(arg);
        let Ok(original_result) = orig else { continue };
        let new = Interp::new(&transformed).with_fuel(200_000).run(arg);
        let differs = match &new {
            Ok(v) => *v != original_result,
            Err(_) => true,
        };
        if differs {
            return Some(Counterexample {
                program: prog.clone(),
                transformed,
                arg,
                original_result,
                transformed_result: new.map_err(|e| e.to_string()),
            });
        }
    }
    None
}

/// Shrinks the counterexample: greedily replaces statements with `skip`
/// while the miscompilation persists.
fn minimize(
    engine: &Engine,
    opt: &Optimization,
    mut cx: Counterexample,
    args: &[i64],
) -> Counterexample {
    loop {
        let main = match cx.program.main() {
            Some(m) => m.clone(),
            None => return cx,
        };
        let mut improved = false;
        for i in 0..main.len() {
            if matches!(main.stmts[i], Stmt::Skip | Stmt::Return(_)) {
                continue;
            }
            let mut reduced = main.clone();
            reduced.stmts[i] = Stmt::Skip;
            let candidate = cx.program.with_proc_replaced(reduced);
            if cobalt_il::validate(&candidate).is_err() {
                continue;
            }
            if let Some(smaller) = try_program(engine, opt, &candidate, args) {
                cx = smaller;
                improved = true;
                break;
            }
        }
        if !improved {
            return cx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesizes_a_counterexample_for_the_buggy_load_elim() {
        let cx = find_counterexample(
            &cobalt_opts::buggy::load_elim_no_alias(),
            &SynthConfig::default(),
        )
        .expect("the unsound optimization must have a counterexample");
        // The witness is small and really demonstrates the bug.
        let text = cx.to_string();
        assert!(text.contains("*"), "needs a pointer to exhibit aliasing:\n{text}");
        let nontrivial = cx
            .program
            .main()
            .unwrap()
            .stmts
            .iter()
            .filter(|s| !matches!(s, Stmt::Skip))
            .count();
        assert!(nontrivial <= 12, "minimization left {nontrivial} statements:\n{text}");
        // Re-check the discrepancy from the stored artifact.
        let orig = Interp::new(&cx.program).run(cx.arg).unwrap();
        assert_eq!(orig, cx.original_result);
        if let Ok(v) = &cx.transformed_result { assert_ne!(orig, *v) }
    }

    #[test]
    fn finds_nothing_for_a_proven_optimization() {
        // A cheap budget suffices: the point is that the search comes up
        // empty for the sound version on the same workload family.
        let cfg = SynthConfig {
            tries: 400,
            ..SynthConfig::default()
        };
        assert!(find_counterexample(&cobalt_opts::load_elim(), &cfg).is_none());
        assert!(find_counterexample(&cobalt_opts::const_prop(), &cfg).is_none());
    }
}
