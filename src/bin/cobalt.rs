//! The `cobalt` command-line tool: run, optimize, verify, and validate
//! from the shell.
//!
//! ```text
//! cobalt run <prog.il> [--arg N]
//! cobalt optimize <prog.il> [--passes a,b,…|all] [--rounds N] [--recursive-dae] [--resilient]
//!                 [--timeout SECS] [--max-steps N] [--jobs N]
//!                 [--journal PATH [--resume|--fresh]] [--json]
//! cobalt verify [<suite.cob>] [--include-buggy] [--timeout SECS] [--max-splits N]
//!               [--jobs N] [--journal PATH [--resume|--fresh]]
//! cobalt lint [<file.il|file.cob>…] [--json] [--deny warn]
//! cobalt validate <orig.il> <new.il>
//! cobalt hunt <name|suite.cob> [--tries N]
//! cobalt serve [--addr A] [--port-file P] [--queue N] [--jobs N|auto]
//!              [--timeout SECS] [--max-steps N] [--journal PATH [--resume|--fresh]]
//!              [--read-timeout-ms N] [--write-timeout-ms N] [--drain-ms N]
//! cobalt client <verify [suite.cob]|optimize <prog.il>|ping|stats|shutdown>
//!               [--addr A|--port-file P] [--retries N] [--include-buggy]
//!               [--passes a,b|all] [--rounds N]
//! ```
//!
//! `verify` exit codes: 0 all proved; 2 an obligation genuinely failed
//! (unsound); 3 failures were resource limits only (inconclusive);
//! 1 anything else.
//!
//! `optimize` exit codes: 0 ok; 3 a pass hit a resource limit (the
//! printed program is still correct — the pass was skipped, never
//! misapplied); 1 anything else.
//!
//! `lint` exit codes: 0 clean; 4 lint errors (or warnings under
//! `--deny warn`); 1 anything else (unreadable file, parse error).

use cobalt::dsl::{LabelEnv, Optimization, PureAnalysis};
use cobalt::engine::{Budget, Engine, EngineError, OptimizeSession};
use cobalt::il::{parse_program, pretty_program, Interp};
use cobalt::serve::exec::ExecConfig;
use cobalt::serve::{
    request_with_retry, ClientConfig, ClientError, Request, RequestOp, ServeConfig, Server, Status,
};
use cobalt::verify::{ResumeMode, RetryPolicy, SemanticMeanings, Session, Verifier};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Exit code for `verify` when an obligation genuinely failed (open
/// branch or prover panic) — evidence of unsoundness.
const EXIT_UNSOUND: u8 = 2;
/// Exit code for `verify` when every failure was a resource limit
/// (deadline, split/term/round cap) — inconclusive, not unsound.
const EXIT_RESOURCE_LIMITED: u8 = 3;
/// Exit code for `lint` when diagnostics fail the run (errors, or
/// warnings under `--deny warn`).
const EXIT_LINT: u8 = 4;

/// A CLI failure carrying its process exit code.
#[derive(Debug)]
struct CliError {
    code: u8,
    msg: String,
    /// Report text that belongs on stdout even on failure (e.g. lint
    /// diagnostics, which downstream tools parse as JSON lines).
    out: Option<String>,
}

impl CliError {
    fn general(msg: impl Into<String>) -> Self {
        CliError {
            code: 1,
            msg: msg.into(),
            out: None,
        }
    }
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::general(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            if let Some(out) = &e.out {
                print!("{out}");
            }
            eprintln!("cobalt: {}", e.msg);
            ExitCode::from(e.code)
        }
    }
}

const USAGE: &str = "usage:
  cobalt run <prog.il> [--arg N]
      parse, validate, and interpret main(N) (default N = 0)
  cobalt optimize <prog.il> [--passes a,b|all] [--rounds N] [--recursive-dae]
                  [--resilient] [--timeout SECS] [--max-steps N] [--jobs N]
                  [--journal PATH [--resume|--fresh]] [--json]
      run the (machine-verified) optimization suite and print the
      result; --resilient skips (rather than propagates) failing passes.
      --timeout bounds wall-clock for the whole run and --max-steps caps
      fixpoint steps per procedure; a budget-exhausted pass is skipped
      soundly and the run exits 3. --jobs optimizes procedures across N
      pool workers (default 1, or COBALT_JOBS) with byte-identical
      output at any count. --journal records per-procedure fixpoint
      results in a crash-safe journal and (by default, or with --resume)
      replays completed procedures as cached after a kill; --fresh
      discards it first. --json prints the pipeline report as JSON
      lines instead of the program. --jobs/--journal/--json imply
      --resilient. exit codes: 0 ok, 3 resource-limited, 1 other errors
  cobalt verify [<suite.cob>] [--include-buggy] [--timeout SECS] [--max-splits N]
                [--jobs N] [--journal PATH [--resume|--fresh]]
      prove every optimization sound; with no file, the built-in suite.
      --timeout bounds wall-clock per report; --max-splits caps case
      splits per proof attempt. --jobs discharges a report's obligations
      across N supervised workers (default 1, or the COBALT_JOBS
      environment variable); verdicts and exit codes are identical at
      any job count. --journal records every obligation
      outcome in a crash-safe proof journal and (by default, or with
      --resume) replays already-proved obligations from it, so a killed
      run resumes warm; --fresh discards the journal first. exit codes:
      0 all proved, 2 unsound, 3 resource-limited (inconclusive),
      1 other errors
  cobalt lint [<file.il|file.cob>…] [--json] [--deny warn]
      static analysis: named diagnostics (CL0xx for rules, IL0xx for
      programs) without invoking the prover. with no files, lints the
      whole built-in registry (including the buggy variants — their
      bugs are semantic, the prover's job). --json emits one JSON
      object per line; --deny warn makes warnings failing. exit codes:
      0 clean, 4 lint errors, 1 other errors
  cobalt trace <prog.il> [--arg N]
      interpret main(N) printing every executed statement
  cobalt validate <orig.il> <new.il>
      translation validation of a single compile (the baseline approach)
  cobalt hunt <name|suite.cob> [--tries N]
      search for a counterexample program for a (presumably unsound)
      optimization; `name` may be `buggy` for the built-in §6 variant
  cobalt serve [--addr A] [--port-file P] [--queue N] [--jobs N|auto]
               [--timeout SECS] [--max-steps N]
               [--journal PATH [--resume|--fresh]]
               [--read-timeout-ms N] [--write-timeout-ms N] [--drain-ms N]
      run the verification daemon: newline-delimited JSON requests over
      TCP, multiplexed onto --jobs pool workers. Identical requests
      share one prover run (single-flight) and later repeats replay
      from the --journal proof cache. A full --queue (default 64) sheds
      with a typed `shed` response and a retry hint instead of queueing
      unboundedly; slow clients are disconnected after the read/write
      deadlines. SIGTERM/SIGINT or an in-band `shutdown` request drains
      gracefully: stop accepting, finish or budget-cancel in-flight
      work, compact the journal, exit 0. --addr defaults to
      127.0.0.1:0 (ephemeral); --port-file writes the bound address for
      scripts. --timeout/--max-steps bound each request exactly as the
      one-shot commands do
  cobalt client <verify [suite.cob]|optimize <prog.il>|ping|stats|shutdown>
                [--addr A|--port-file P] [--retries N] [--io-timeout SECS]
                [--include-buggy] [--passes a,b|all] [--rounds N]
      send one request to a running daemon and print its output.
      Connection failures and shed responses retry with capped
      exponential backoff (--retries, default 5), honoring the daemon's
      retry_after_ms hint. --io-timeout bounds this client's socket
      reads/writes (default 600); request budgets are the daemon's
      --timeout, so passing --timeout here is a typed error. exit codes
      mirror the one-shot commands: 0 ok/proved, 2 unsound,
      3 resource-limited or shed after retries, 1 other errors
";

/// Entry point, factored for testing.
fn run_cli(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]).map_err(CliError::general),
        Some("trace") => cmd_trace(&args[1..]).map_err(CliError::general),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]).map_err(CliError::general),
        Some("hunt") => cmd_hunt(&args[1..]).map_err(CliError::general),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::general(format!(
            "unknown command `{other}`\n{USAGE}"
        ))),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].as_str())
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Flags with values.
            skip = matches!(
                a.as_str(),
                "--arg" | "--passes" | "--rounds" | "--tries" | "--timeout" | "--max-splits"
                    | "--max-steps" | "--jobs" | "--deny" | "--journal" | "--addr"
                    | "--port-file" | "--queue" | "--retries" | "--io-timeout"
                    | "--read-timeout-ms" | "--write-timeout-ms" | "--drain-ms"
            ) && i + 1 < args.len();
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn cmd_run(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(format!("run: expected one program file\n{USAGE}"));
    };
    let arg: i64 = flag_value(args, "--arg")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("--arg: {e}"))?;
    let prog = parse_program(&read(path)?).map_err(|e| e.to_string())?;
    cobalt::il::validate(&prog).map_err(|e| e.to_string())?;
    let result = Interp::new(&prog).run(arg).map_err(|e| e.to_string())?;
    Ok(format!("main({arg}) = {result}\n"))
}

fn cmd_trace(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(format!("trace: expected one program file\n{USAGE}"));
    };
    let arg: i64 = flag_value(args, "--arg")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("--arg: {e}"))?;
    let prog = parse_program(&read(path)?).map_err(|e| e.to_string())?;
    cobalt::il::validate(&prog).map_err(|e| e.to_string())?;
    let (trace, result) = Interp::new(&prog).with_fuel(10_000).run_traced(arg);
    let mut out = String::new();
    for entry in &trace {
        out.push_str(&format!("{entry}\n"));
    }
    match result {
        Ok(v) => out.push_str(&format!("=> main({arg}) = {v} ({} steps)\n", trace.len())),
        Err(e) => out.push_str(&format!("=> {e} (after {} steps)\n", trace.len())),
    }
    Ok(out)
}

fn suite_by_names(names: &str) -> Result<Vec<Optimization>, String> {
    if names == "all" {
        return Ok(cobalt::opts::default_pipeline());
    }
    let registry = cobalt::opts::all_optimizations();
    names
        .split(',')
        .map(|n| {
            registry
                .iter()
                .find(|o| o.name == n)
                .cloned()
                .ok_or_else(|| format!("unknown pass `{n}`"))
        })
        .collect()
}

/// The flag cluster shared by every budgeted command (`optimize`,
/// `verify`, `serve`, `client`): wall-clock budget, step cap, worker
/// count, journal spec, and output mode. Parsed once into one typed
/// value instead of being re-scraped flag-by-flag in each command.
#[derive(Debug, Clone, Default)]
struct CommonFlags {
    /// `--timeout SECS` (fractions allowed), as a duration.
    timeout: Option<Duration>,
    /// `--max-steps N` fixpoint step cap.
    max_steps: Option<u64>,
    /// Resolved worker count: `--jobs N|auto`, then `COBALT_JOBS`,
    /// then 1.
    jobs: usize,
    /// Whether `--jobs` was passed explicitly (as opposed to resolved
    /// from the environment or defaulted) — `optimize` uses this to
    /// imply `--resilient`.
    jobs_explicit: bool,
    /// `--journal PATH` plus the `--resume`/`--fresh` mode.
    journal: Option<(String, ResumeMode)>,
    /// `--json`.
    json: bool,
}

impl CommonFlags {
    /// Parses the shared cluster; `cmd` prefixes error messages.
    fn parse(args: &[String], cmd: &str) -> Result<CommonFlags, CliError> {
        let timeout = match flag_value(args, "--timeout") {
            None => None,
            Some(secs) => {
                let secs: f64 = secs
                    .parse()
                    .map_err(|e| CliError::general(format!("--timeout: {e}")))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(CliError::general(format!(
                        "--timeout: expected a nonnegative number, got `{secs}`"
                    )));
                }
                Some(Duration::from_secs_f64(secs))
            }
        };
        let max_steps = match flag_value(args, "--max-steps") {
            None => None,
            Some(n) => Some(
                n.parse::<u64>()
                    .map_err(|e| CliError::general(format!("--max-steps: {e}")))?,
            ),
        };
        Ok(CommonFlags {
            timeout,
            max_steps,
            jobs: resolve_jobs(args).map_err(CliError::general)?,
            jobs_explicit: flag_value(args, "--jobs").is_some(),
            journal: journal_spec(args, cmd)?.map(|(p, m)| (p.to_string(), m)),
            json: args.iter().any(|a| a == "--json"),
        })
    }

    /// The engine [`Budget`] this cluster describes (`optimize` and
    /// the daemon's per-request optimize budget).
    fn engine_budget(&self) -> Budget {
        let mut budget = Budget::unlimited();
        if let Some(timeout) = self.timeout {
            budget = budget.with_deadline(timeout);
        }
        if let Some(n) = self.max_steps {
            budget = budget.with_max_steps(n);
        }
        budget
    }
}

/// Maps an engine error onto the optimize exit-code contract: resource
/// exhaustion is exit 3 (inconclusive, nothing wrong with the program),
/// everything else exit 1.
fn engine_cli_error(e: &EngineError) -> CliError {
    CliError {
        code: match e {
            EngineError::ResourceLimited(_) => EXIT_RESOURCE_LIMITED,
            _ => 1,
        },
        msg: e.to_string(),
        out: None,
    }
}

fn cmd_optimize(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(CliError::general(format!(
            "optimize: expected one program file\n{USAGE}"
        )));
    };
    let common = CommonFlags::parse(args, "optimize")?;
    let rounds: usize = flag_value(args, "--rounds")
        .unwrap_or("4")
        .parse()
        .map_err(|e| format!("--rounds: {e}"))?;
    let passes = suite_by_names(flag_value(args, "--passes").unwrap_or("all"))?;
    let prog = parse_program(&read(path)?).map_err(|e| e.to_string())?;
    cobalt::il::validate(&prog).map_err(|e| e.to_string())?;
    let engine = Engine::new(LabelEnv::standard()).with_budget(common.engine_budget());
    let json = common.json;
    // The session driver carries resilient (pass-quarantining)
    // semantics; journaling, parallelism, and machine-readable reports
    // only make sense there, so those flags imply --resilient.
    let resilient = args.iter().any(|a| a == "--resilient")
        || json
        || common.journal.is_some()
        || common.jobs_explicit;
    if resilient {
        let mut session = OptimizeSession::new(engine).with_jobs(common.jobs);
        if let Some((jpath, mode)) = &common.journal {
            session = session.with_journal(jpath, *mode);
        }
        let (out, report) =
            session.optimize_program(&prog, &cobalt::opts::all_analyses(), &passes, rounds);
        session.finish();
        let s = if json {
            // Machine-readable: the report only (JSON lines, stable
            // bytes at any --jobs count).
            format!("{}\n", report.json_lines())
        } else {
            let mut s = String::new();
            if session.load_report().corrupted() {
                s.push_str(&format!(
                    "// note: journal recovered {} record(s), discarded {} corrupt byte(s)\n",
                    session.load_report().records,
                    session.load_report().discarded_bytes,
                ));
            }
            if let Some(reason) = session.degraded() {
                // Journal trouble never fails optimization — it
                // degrades to an unjournaled run and says so.
                s.push_str(&format!("// note: journaling disabled ({reason})\n"));
            }
            s.push_str(&format!("// {}\n", report.summary()));
            for f in &report.failures {
                s.push_str(&format!("// skipped: {f}\n"));
            }
            s.push_str(&pretty_program(&out));
            s
        };
        if report.resource_limited() {
            return Err(CliError {
                code: EXIT_RESOURCE_LIMITED,
                msg: "optimization hit resource limits; affected passes were skipped soundly"
                    .into(),
                out: Some(s),
            });
        }
        return Ok(s);
    }
    let (mut out, n) = engine
        .optimize_program(&prog, &cobalt::opts::all_analyses(), &passes, rounds)
        .map_err(|e| engine_cli_error(&e))?;
    let mut extra = 0;
    if args.iter().any(|a| a == "--recursive-dae") {
        let mut next = out.clone();
        for proc in &out.procs {
            let (p, removed) =
                cobalt::engine::apply_recursive(&engine, proc, &cobalt::opts::dae())
                    .map_err(|e| engine_cli_error(&e))?;
            extra += removed.len();
            next = next.with_proc_replaced(p);
        }
        out = next;
    }
    Ok(format!(
        "// {} rewrites applied{}\n{}",
        n,
        if extra > 0 {
            format!(" (+{extra} by recursive DAE)")
        } else {
            String::new()
        },
        pretty_program(&out)
    ))
}

fn load_suite(path: Option<&str>) -> Result<(Vec<Optimization>, Vec<PureAnalysis>), String> {
    match path {
        None => Ok((cobalt::opts::all_optimizations(), cobalt::opts::all_analyses())),
        Some(p) => {
            let suite = cobalt::dsl::parse_suite(&read(p)?).map_err(|e| e.to_string())?;
            Ok((suite.optimizations, suite.analyses))
        }
    }
}

/// Builds the retry policy for `verify` from the shared `--timeout`
/// (per-report wall-clock budget) and `--max-splits` (cap on case
/// splits per proof attempt, applied to every tier).
fn verify_policy(args: &[String], common: &CommonFlags) -> Result<RetryPolicy, String> {
    let mut policy = RetryPolicy::default();
    if let Some(n) = flag_value(args, "--max-splits") {
        let n: usize = n.parse().map_err(|e| format!("--max-splits: {e}"))?;
        for tier in &mut policy.tiers {
            tier.max_splits = tier.max_splits.min(n);
        }
    }
    if let Some(timeout) = common.timeout {
        policy = policy.with_report_deadline(timeout);
    }
    Ok(policy)
}

/// Resolves the worker count: `--jobs` wins, then the `COBALT_JOBS`
/// environment variable, then 1 (sequential — the pool is bypassed
/// entirely). The value `auto` (from either source) asks the host via
/// [`std::thread::available_parallelism`], clamped to 64; the pool
/// further clamps its workers to the task count, so an oversized
/// answer never spawns idle threads. Zero and non-numeric values are
/// typed CLI errors, from either source.
fn resolve_jobs(args: &[String]) -> Result<usize, String> {
    let (value, source) = match flag_value(args, "--jobs") {
        Some(v) => (v.to_string(), "--jobs"),
        None => match std::env::var("COBALT_JOBS") {
            Ok(v) => (v, "COBALT_JOBS"),
            Err(_) => return Ok(1),
        },
    };
    if value.trim() == "auto" {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        return Ok(n.min(64));
    }
    let jobs: usize = value
        .trim()
        .parse()
        .map_err(|e| format!("{source}: {e} (`{value}`)"))?;
    if jobs == 0 {
        return Err(format!("{source}: expected a positive worker count, got 0"));
    }
    Ok(jobs)
}

/// Parses `--journal PATH` plus the mutually exclusive
/// `--resume`/`--fresh` mode flags (shared by `verify` and `optimize`).
/// Both mode flags require `--journal`; with `--journal` alone the
/// session resumes (an absent or empty journal resumes to nothing, so
/// this is always safe). `cmd` prefixes error messages.
fn journal_spec<'a>(
    args: &'a [String],
    cmd: &str,
) -> Result<Option<(&'a str, ResumeMode)>, CliError> {
    let resume = args.iter().any(|a| a == "--resume");
    let fresh = args.iter().any(|a| a == "--fresh");
    if resume && fresh {
        return Err(CliError::general(format!(
            "{cmd}: --resume and --fresh are mutually exclusive"
        )));
    }
    match flag_value(args, "--journal") {
        None if resume || fresh => Err(CliError::general(format!(
            "{cmd}: --resume/--fresh require --journal PATH"
        ))),
        None => Ok(None),
        Some(path) => {
            let mode = if fresh {
                ResumeMode::Fresh
            } else {
                ResumeMode::Resume
            };
            Ok(Some((path, mode)))
        }
    }
}

/// Builds the verification session for `verify` from the parsed
/// journal spec. A journal path that cannot be opened is a typed CLI
/// error (exit 1), not a panic.
fn verify_session(common: &CommonFlags, verifier: Verifier) -> Result<Session, CliError> {
    match &common.journal {
        None => Ok(Session::new(verifier)),
        Some((path, mode)) => Session::with_journal(verifier, path, *mode).map_err(|e| {
            CliError::general(format!("verify: opening journal `{path}`: {e}"))
        }),
    }
}

fn cmd_verify(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    let common = CommonFlags::parse(args, "verify")?;
    let (opts, analyses) = load_suite(pos.first().copied())?;
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard())
        .with_retry_policy(verify_policy(args, &common)?)
        .with_jobs(common.jobs);
    let mut session = verify_session(&common, verifier)?;
    let mut out = String::new();
    if session.load_report().corrupted() {
        out.push_str(&format!(
            "note: journal recovered {} record(s), discarded {} corrupt byte(s){}\n",
            session.load_report().records,
            session.load_report().discarded_bytes,
            session
                .load_report()
                .corruption
                .as_deref()
                .map(|c| format!(" ({c})"))
                .unwrap_or_default(),
        ));
    }
    let mut unsound = false;
    let mut limited = false;
    let mut note_report = |report: &cobalt::verify::Report, out: &mut String| {
        if !report.all_proved() {
            if report.only_resource_limited_failures() {
                limited = true;
            } else {
                unsound = true;
            }
        }
        out.push_str(&report.summary());
        out.push('\n');
        for o in report.outcomes.iter().filter(|o| !o.proved) {
            out.push_str(&format!(
                "  FAILED {}{} — {}\n",
                o.id,
                if o.resource_limited {
                    " (resource-limited)"
                } else {
                    ""
                },
                o.detail
            ));
        }
    };
    for a in &analyses {
        let report = session.verify_analysis(a).map_err(|e| e.to_string())?;
        note_report(&report, &mut out);
    }
    for o in &opts {
        let report = session.verify_optimization(o).map_err(|e| e.to_string())?;
        note_report(&report, &mut out);
    }
    if args.iter().any(|a| a == "--include-buggy") {
        for o in cobalt::opts::buggy_optimizations() {
            let report = session.verify_optimization(&o).map_err(|e| e.to_string())?;
            let rejected = !report.all_proved();
            // A buggy variant that verifies is itself a soundness
            // regression: fail the command.
            if !rejected {
                unsound = true;
            }
            out.push_str(&format!(
                "{} — {}\n",
                report.summary(),
                if rejected {
                    "correctly rejected"
                } else {
                    "UNEXPECTEDLY PROVED"
                }
            ));
        }
    }
    session.finish();
    if let Some(reason) = session.degraded() {
        // Journal trouble never fails verification — it degrades to an
        // uncached run and says so, preserving the exit-code contract.
        out.push_str(&format!(
            "note: journaling disabled ({reason}); verification continued uncached\n"
        ));
    }
    if unsound {
        Err(CliError {
            code: EXIT_UNSOUND,
            msg: format!("{out}some obligations failed"),
            out: None,
        })
    } else if limited {
        Err(CliError {
            code: EXIT_RESOURCE_LIMITED,
            msg: format!("{out}proving hit resource limits (inconclusive, not unsound)"),
            out: None,
        })
    } else {
        out.push_str("all optimizations proved sound\n");
        Ok(out)
    }
}

fn cmd_lint(args: &[String]) -> Result<String, CliError> {
    use cobalt::lint::{
        lint_analysis, lint_optimization, lint_program, Diagnostics, LintContext, RuleLintOptions,
    };
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = match flag_value(args, "--deny") {
        None => false,
        Some("warn") => true,
        Some(other) => {
            return Err(CliError::general(format!(
                "--deny: expected `warn`, got `{other}`"
            )))
        }
    };
    let env = LabelEnv::standard();
    let lint_opts = RuleLintOptions::default();
    let mut diags = Diagnostics::new();
    let pos = positional(args);
    if pos.is_empty() {
        // Lint the whole built-in registry. The buggy §6 variants are
        // included deliberately: they must be structurally clean — the
        // bug each one carries is semantic, which is the prover's job
        // (DESIGN.md §9).
        let analyses = cobalt::opts::all_analyses();
        let ctx = LintContext::new(&env).with_analyses(&analyses);
        for a in &analyses {
            diags.absorb(lint_analysis(a, &ctx, &lint_opts));
        }
        for o in cobalt::opts::all_optimizations()
            .iter()
            .chain(cobalt::opts::buggy_optimizations().iter())
        {
            diags.absorb(lint_optimization(o, &ctx, &lint_opts));
        }
    } else {
        for path in pos {
            if path.ends_with(".cob") {
                let suite =
                    cobalt::dsl::parse_suite(&read(path)?).map_err(|e| e.to_string())?;
                let ctx = LintContext::new(&env).with_analyses(&suite.analyses);
                for a in &suite.analyses {
                    diags.absorb(lint_analysis(a, &ctx, &lint_opts));
                }
                for o in &suite.optimizations {
                    diags.absorb(lint_optimization(o, &ctx, &lint_opts));
                }
            } else {
                let prog = parse_program(&read(path)?).map_err(|e| e.to_string())?;
                lint_program(&prog, &mut diags);
            }
        }
    }
    let out = if json {
        diags.json_lines()
    } else {
        diags.render_human()
    };
    if diags.is_failing(deny_warnings) {
        Err(CliError {
            code: EXIT_LINT,
            msg: format!(
                "lint failed: {} error(s), {} warning(s)",
                diags.error_count(),
                diags.warning_count()
            ),
            out: Some(out),
        })
    } else {
        Ok(out)
    }
}

fn cmd_validate(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [orig_path, new_path] = pos.as_slice() else {
        return Err(format!("validate: expected two program files\n{USAGE}"));
    };
    let orig = parse_program(&read(orig_path)?).map_err(|e| e.to_string())?;
    let new = parse_program(&read(new_path)?).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for proc in &orig.procs {
        let Some(new_proc) = new.proc(&proc.name) else {
            return Err(format!("procedure `{}` missing from the transformed program", proc.name));
        };
        let report = cobalt::tv::validate_proc(proc, new_proc).map_err(|e| e.to_string())?;
        for site in &report.sites {
            out.push_str(&format!(
                "{}:{} {} — {}\n",
                proc.name,
                site.index,
                if site.validated { "ok" } else { "REJECTED" },
                site.reason
            ));
        }
        if !report.validated() {
            return Err(format!("{out}validation failed"));
        }
    }
    out.push_str("validated\n");
    Ok(out)
}

fn cmd_hunt(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [what] = pos.as_slice() else {
        return Err(format!("hunt: expected an optimization name or suite file\n{USAGE}"));
    };
    let tries: u64 = flag_value(args, "--tries")
        .unwrap_or("3000")
        .parse()
        .map_err(|e| format!("--tries: {e}"))?;
    let opt = if *what == "buggy" {
        cobalt::opts::buggy::load_elim_no_alias()
    } else if what.ends_with(".cob") {
        let suite = cobalt::dsl::parse_suite(&read(what)?).map_err(|e| e.to_string())?;
        suite
            .optimizations
            .into_iter()
            .next()
            .ok_or_else(|| "suite file contains no optimizations".to_string())?
    } else {
        cobalt::opts::all_optimizations()
            .into_iter()
            .find(|o| &o.name == what)
            .ok_or_else(|| format!("unknown optimization `{what}`"))?
    };
    let cfg = cobalt::synth::SynthConfig {
        tries,
        ..Default::default()
    };
    match cobalt::synth::find_counterexample(&opt, &cfg) {
        Some(cx) => Ok(format!("counterexample found for `{}`:\n{cx}", opt.name)),
        None => Ok(format!(
            "no counterexample found for `{}` in {tries} tries\n",
            opt.name
        )),
    }
}

/// Parses a `--…-ms MILLIS` flag with a default.
fn ms_flag(args: &[String], flag: &str, default_ms: u64) -> Result<Duration, CliError> {
    match flag_value(args, flag) {
        None => Ok(Duration::from_millis(default_ms)),
        Some(v) => v
            .parse::<u64>()
            .map(Duration::from_millis)
            .map_err(|e| CliError::general(format!("{flag}: {e}"))),
    }
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    if !pos.is_empty() {
        return Err(CliError::general(format!(
            "serve: unexpected argument `{}`\n{USAGE}",
            pos[0]
        )));
    }
    let common = CommonFlags::parse(args, "serve")?;
    let queue_cap: usize = flag_value(args, "--queue")
        .unwrap_or("64")
        .parse()
        .map_err(|e| format!("--queue: {e}"))?;
    if queue_cap == 0 {
        return Err(CliError::general("--queue: expected a positive capacity, got 0"));
    }
    let exec = ExecConfig {
        policy: verify_policy(args, &common)?,
        timeout: common.timeout,
        max_steps: common.max_steps,
        // Within-request parallelism is the dispatcher's decision
        // (batch-size dependent); this is only the fallback.
        jobs: 1,
    };
    let cfg = ServeConfig {
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:0").to_string(),
        port_file: flag_value(args, "--port-file").map(PathBuf::from),
        jobs: common.jobs,
        queue_cap,
        exec,
        journal: common
            .journal
            .as_ref()
            .map(|(p, m)| (PathBuf::from(p), *m)),
        read_timeout: ms_flag(args, "--read-timeout-ms", 10_000)?,
        write_timeout: ms_flag(args, "--write-timeout-ms", 10_000)?,
        drain_wait: ms_flag(args, "--drain-ms", 5_000)?,
        ..ServeConfig::default()
    };
    let handle = Server::start(cfg)
        .map_err(|e| CliError::general(format!("serve: starting daemon: {e}")))?;
    // The address goes to stderr immediately (stdout is the summary,
    // printed at exit); scripts rendezvous via --port-file.
    eprintln!("cobalt serve: listening on {}", handle.addr());
    let summary = handle.join();
    let mut out = format!(
        "serve: {} request(s) — {} fresh, {} cached, {} coalesced, {} shed, {} error(s); {} cache entr{}\n",
        summary.received,
        summary.fresh,
        summary.cache_hits,
        summary.coalesced,
        summary.shed,
        summary.errors,
        summary.cache_entries,
        if summary.cache_entries == 1 { "y" } else { "ies" },
    );
    if let Some(reason) = &summary.degraded {
        out.push_str(&format!(
            "note: proof cache degraded ({reason}); daemon served uncached\n"
        ));
    }
    Ok(out)
}

fn cmd_client(args: &[String]) -> Result<String, CliError> {
    let pos = positional(args);
    let Some(&op_name) = pos.first() else {
        return Err(CliError::general(format!(
            "client: expected an operation (verify|optimize|ping|stats|shutdown)\n{USAGE}"
        )));
    };
    let common = CommonFlags::parse(args, "client")?;
    // `--timeout` is the *daemon-side* request budget everywhere else
    // (serve docs: it bounds requests exactly as the one-shot commands
    // do). Reinterpreting it as this client's socket deadline would
    // make a habitual `--timeout 5` abandon the read mid-exchange
    // while the daemon keeps executing — reject it and point at the
    // distinct flag instead.
    if common.timeout.is_some() {
        return Err(CliError::general(
            "client: --timeout is a daemon-side request budget (set it on `cobalt serve`); \
             use --io-timeout SECS to bound this client's socket I/O",
        ));
    }
    let io_timeout = match flag_value(args, "--io-timeout") {
        None => Duration::from_secs(600),
        Some(secs) => {
            let secs: f64 = secs
                .parse()
                .map_err(|e| CliError::general(format!("--io-timeout: {e}")))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(CliError::general(format!(
                    "--io-timeout: expected a positive number of seconds, got `{secs}`"
                )));
            }
            Duration::from_secs_f64(secs)
        }
    };
    let op = match op_name {
        "ping" => RequestOp::Ping,
        "stats" => RequestOp::Stats,
        "shutdown" => RequestOp::Shutdown,
        "verify" => RequestOp::Verify {
            suite: pos.get(1).map(|p| read(p)).transpose()?,
            include_buggy: args.iter().any(|a| a == "--include-buggy"),
        },
        "optimize" => {
            let Some(path) = pos.get(1) else {
                return Err(CliError::general(format!(
                    "client optimize: expected one program file\n{USAGE}"
                )));
            };
            RequestOp::Optimize {
                program: read(path)?,
                passes: flag_value(args, "--passes").unwrap_or("all").to_string(),
                rounds: flag_value(args, "--rounds")
                    .unwrap_or("4")
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?,
            }
        }
        other => {
            return Err(CliError::general(format!(
                "client: unknown operation `{other}`\n{USAGE}"
            )))
        }
    };
    let addr = match (flag_value(args, "--addr"), flag_value(args, "--port-file")) {
        (Some(a), _) => a.to_string(),
        (None, Some(pf)) => read(pf)?.trim().to_string(),
        (None, None) => ClientConfig::default().addr,
    };
    let cfg = ClientConfig {
        addr,
        io_timeout,
        retries: flag_value(args, "--retries")
            .unwrap_or("5")
            .parse()
            .map_err(|e| format!("--retries: {e}"))?,
        ..ClientConfig::default()
    };
    let req = Request {
        id: format!("cli-{}", std::process::id()),
        op,
    };
    let resp = match request_with_retry(&cfg, &req) {
        Ok(resp) => resp,
        Err(ClientError::Shed(r)) => {
            // Still overloaded after the whole retry budget: the
            // daemon is resource-limited, not wrong — exit 3, like any
            // exhausted budget.
            return Err(CliError {
                code: EXIT_RESOURCE_LIMITED,
                msg: format!(
                    "daemon shed the request after retries ({})",
                    if r.error.is_empty() { "overloaded" } else { &r.error }
                ),
                out: None,
            });
        }
        Err(e) => return Err(CliError::general(format!("client: {e}"))),
    };
    if !resp.note.is_empty() {
        eprintln!("cobalt client: note: {}", resp.note);
    }
    match resp.status {
        Status::Bye => Ok("daemon draining\n".to_string()),
        Status::Ok if resp.exit == 0 => Ok(resp.output),
        Status::Ok => Err(CliError {
            code: resp.exit,
            msg: format!("daemon verdict: {}", resp.verdict),
            out: Some(resp.output),
        }),
        _ => Err(CliError::general(format!(
            "daemon error: {}",
            if resp.error.is_empty() { "unspecified" } else { &resp.error }
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, contents: &str) -> String {
        // Keep `name` (and so its extension) last: `cobalt lint`
        // dispatches on the file extension.
        let path = std::env::temp_dir().join(format!("cobalt_cli_{}_{name}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run_cli(&[]).unwrap().contains("usage"));
        assert!(run_cli(&["bogus".into()]).is_err());
    }

    #[test]
    fn run_command_interprets() {
        let p = write_tmp("run.il", "proc main(x) { decl y; y := x + 1; return y; }");
        let out = run_cli(&["run".into(), p.clone(), "--arg".into(), "41".into()]).unwrap();
        assert_eq!(out, "main(41) = 42\n");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn optimize_command_rewrites() {
        let p = write_tmp(
            "opt.il",
            "proc main(x) { decl a; decl c; a := 2; c := a; return c; }",
        );
        let out = run_cli(&[
            "optimize".into(),
            p.clone(),
            "--passes".into(),
            "const_prop".into(),
        ])
        .unwrap();
        assert!(out.contains("c := 2"), "{out}");
        std::fs::remove_file(p).ok();
    }

    /// A small two-procedure program with a loop, so fixpoints take
    /// enough steps to exercise budgets and parallelism.
    const TWO_PROCS: &str = "proc f(x) { decl a; decl c; a := 2; c := a; return c; }
proc main(x) {
    decl i;
    decl s;
    i := x;
    s := 0;
    if i goto 5 else 8;
    s := s + i;
    i := i - 1;
    if i goto 5 else 8;
    return s;
}";

    #[test]
    fn optimize_timeout_zero_exits_resource_limited() {
        let p = write_tmp("opt_to.il", TWO_PROCS);
        // Strict driver: the engine error surfaces as exit 3.
        let err = run_cli(&["optimize".into(), p.clone(), "--timeout".into(), "0".into()])
            .unwrap_err();
        assert_eq!(err.code, EXIT_RESOURCE_LIMITED, "{}", err.msg);
        // Resilient driver: same exit code, but the (unoptimized,
        // still-correct) program is printed with a degradation note.
        let err = run_cli(&[
            "optimize".into(),
            p.clone(),
            "--timeout".into(),
            "0".into(),
            "--resilient".into(),
        ])
        .unwrap_err();
        assert_eq!(err.code, EXIT_RESOURCE_LIMITED, "{}", err.msg);
        let out = err.out.expect("resilient run still prints the program");
        assert!(out.contains("proc main"), "{out}");
        assert!(out.contains("resource limited"), "{out}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn optimize_max_steps_zero_quarantines_soundly() {
        let p = write_tmp("opt_ms.il", TWO_PROCS);
        let err = run_cli(&[
            "optimize".into(),
            p.clone(),
            "--max-steps".into(),
            "0".into(),
            "--resilient".into(),
        ])
        .unwrap_err();
        assert_eq!(err.code, EXIT_RESOURCE_LIMITED, "{}", err.msg);
        let out = err.out.unwrap();
        // Nothing was rewritten — the program must round-trip intact.
        assert!(out.contains("step cap exhausted"), "{out}");
        assert!(out.contains("s := s + i"), "{out}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn optimize_json_emits_report_lines_only() {
        let p = write_tmp("opt_json.il", TWO_PROCS);
        let out = run_cli(&["optimize".into(), p.clone(), "--json".into()]).unwrap();
        let mut lines = out.lines();
        let first = lines.next().unwrap();
        assert!(first.starts_with("{\"type\":\"summary\""), "{first}");
        assert!(first.contains("\"applied\":"), "{first}");
        // No program text in machine-readable mode.
        assert!(!out.contains("proc main"), "{out}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn optimize_jobs_output_is_byte_identical() {
        let p = write_tmp("opt_jobs.il", TWO_PROCS);
        let one = run_cli(&["optimize".into(), p.clone(), "--jobs".into(), "1".into()]).unwrap();
        let four = run_cli(&["optimize".into(), p.clone(), "--jobs".into(), "4".into()]).unwrap();
        assert_eq!(one, four);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn optimize_journal_resumes_warm() {
        let p = write_tmp("opt_jnl.il", TWO_PROCS);
        let jpath = std::env::temp_dir().join(format!("cobalt_cli_{}_opt.journal", std::process::id()));
        let j = jpath.to_string_lossy().into_owned();
        let cold = run_cli(&["optimize".into(), p.clone(), "--journal".into(), j.clone()]).unwrap();
        assert!(!cold.contains("cached"), "{cold}");
        let warm = run_cli(&["optimize".into(), p.clone(), "--journal".into(), j.clone()]).unwrap();
        assert!(warm.contains("2 procs cached"), "{warm}");
        // Warm resume replays the same result: program text identical.
        assert_eq!(
            cold.lines().skip(1).collect::<Vec<_>>(),
            warm.lines().skip(1).collect::<Vec<_>>(),
        );
        // --fresh discards the cache and recomputes.
        let fresh = run_cli(&[
            "optimize".into(),
            p.clone(),
            "--journal".into(),
            j.clone(),
            "--fresh".into(),
        ])
        .unwrap();
        assert!(!fresh.contains("cached"), "{fresh}");
        std::fs::remove_file(p).ok();
        std::fs::remove_file(jpath).ok();
    }

    #[test]
    fn optimize_journal_mode_flags_are_validated() {
        let p = write_tmp("opt_jv.il", TWO_PROCS);
        let err = run_cli(&["optimize".into(), p.clone(), "--resume".into()]).unwrap_err();
        assert!(err.msg.contains("require --journal"), "{}", err.msg);
        let err = run_cli(&[
            "optimize".into(),
            p.clone(),
            "--journal".into(),
            "x.journal".into(),
            "--resume".into(),
            "--fresh".into(),
        ])
        .unwrap_err();
        assert!(err.msg.contains("mutually exclusive"), "{}", err.msg);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn optimize_fixpoint_fault_degrades_not_fatal() {
        let p = write_tmp("opt_fault.il", TWO_PROCS);
        let out = cobalt_support::fault::with_faults("engine.fixpoint:fail@1", || {
            run_cli(&["optimize".into(), p.clone(), "--resilient".into()]).unwrap()
        });
        // The injected failure quarantines one pass; the run still
        // succeeds (exit 0) and prints a valid program.
        assert!(out.contains("degraded"), "{out}");
        assert!(out.contains("injected fault"), "{out}");
        assert!(out.contains("proc main"), "{out}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn optimize_journal_fault_degrades_to_unjournaled() {
        let p = write_tmp("opt_jfault.il", TWO_PROCS);
        let jpath =
            std::env::temp_dir().join(format!("cobalt_cli_{}_optjf.journal", std::process::id()));
        let j = jpath.to_string_lossy().into_owned();
        let out = cobalt_support::fault::with_faults("engine.journal:fail@1", || {
            run_cli(&["optimize".into(), p.clone(), "--journal".into(), j.clone()]).unwrap()
        });
        assert!(out.contains("journaling disabled"), "{out}");
        assert!(out.contains("proc main"), "{out}");
        std::fs::remove_file(p).ok();
        std::fs::remove_file(jpath).ok();
    }

    #[test]
    fn verify_command_on_suite_file() {
        let p = write_tmp(
            "suite.cob",
            "forward const_prop {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let out = run_cli(&["verify".into(), p.clone()]).unwrap();
        assert!(out.contains("all optimizations proved sound"), "{out}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn verify_timeout_zero_exits_resource_limited() {
        let p = write_tmp(
            "suite_to.cob",
            "forward const_prop {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let err = run_cli(&[
            "verify".into(),
            p.clone(),
            "--timeout".into(),
            "0".into(),
        ])
        .unwrap_err();
        assert_eq!(err.code, EXIT_RESOURCE_LIMITED, "{}", err.msg);
        assert!(err.msg.contains("resource limits"), "{}", err.msg);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn verify_unsound_suite_exits_unsound() {
        // const_prop with the guard protecting the wrong variable: the
        // region no longer establishes eta(Y) == C, so an obligation
        // fails on a genuine open branch.
        let p = write_tmp(
            "suite_bad.cob",
            "forward bad_prop {
                stmt(Y := C) followed by !mayDef(X)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let err = run_cli(&["verify".into(), p.clone()]).unwrap_err();
        assert_eq!(err.code, EXIT_UNSOUND, "{}", err.msg);
        assert!(err.msg.contains("some obligations failed"), "{}", err.msg);
        std::fs::remove_file(p).ok();
    }

    fn common(args: &[String]) -> CommonFlags {
        CommonFlags::parse(args, "test").unwrap()
    }

    #[test]
    fn verify_flags_parse_and_cap_tiers() {
        let args = vec!["--max-splits".to_string(), "7".to_string()];
        let policy = verify_policy(&args, &common(&args)).unwrap();
        assert!(policy.tiers.iter().all(|t| t.max_splits == 7));
        // Bad timeouts are caught once, in the shared cluster parse.
        assert!(CommonFlags::parse(&["--timeout".into(), "abc".into()], "t").is_err());
        assert!(CommonFlags::parse(&["--timeout".into(), "-1".into()], "t").is_err());
        let args = vec!["--timeout".to_string(), "1.5".to_string()];
        let policy = verify_policy(&args, &common(&args)).unwrap();
        assert_eq!(
            policy.report_deadline,
            Some(std::time::Duration::from_millis(1500))
        );
    }

    #[test]
    fn common_flags_parse_the_whole_cluster_once() {
        let args: Vec<String> = [
            "--timeout", "2", "--max-steps", "9", "--jobs", "3", "--journal", "j.cobj",
            "--fresh", "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let c = common(&args);
        assert_eq!(c.timeout, Some(std::time::Duration::from_secs(2)));
        assert_eq!(c.max_steps, Some(9));
        assert_eq!(c.jobs, 3);
        assert!(c.jobs_explicit);
        assert_eq!(c.journal, Some(("j.cobj".to_string(), ResumeMode::Fresh)));
        assert!(c.json);
        // And the engine budget it derives is the strict one.
        let b = c.engine_budget();
        assert_eq!(b.max_steps(), Some(9));
        assert!(format!("{b:?}").contains("deadline: Some"), "{b:?}");
    }

    #[test]
    fn resolve_jobs_flag_parses_and_rejects_nonsense() {
        // No flag and no env (the test env never sets COBALT_JOBS):
        // sequential default.
        assert_eq!(resolve_jobs(&[]).unwrap(), 1);
        assert_eq!(resolve_jobs(&["--jobs".into(), "4".into()]).unwrap(), 4);
        assert_eq!(resolve_jobs(&["--jobs".into(), " 2 ".into()]).unwrap(), 2);
        let err = resolve_jobs(&["--jobs".into(), "0".into()]).unwrap_err();
        assert!(err.contains("positive worker count"), "{err}");
        let err = resolve_jobs(&["--jobs".into(), "many".into()]).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        // And it surfaces as a typed exit-1 CLI error, not a panic.
        let err = run_cli(&["verify".into(), "--jobs".into(), "0".into()]).unwrap_err();
        assert_eq!(err.code, 1, "{}", err.msg);
    }

    #[test]
    fn resolve_jobs_auto_asks_the_host_and_clamps() {
        let jobs = resolve_jobs(&["--jobs".into(), "auto".into()]).unwrap();
        assert!(jobs >= 1, "auto resolved to zero workers");
        assert!(jobs <= 64, "auto must clamp: got {jobs}");
        let host = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(jobs, host.min(64));
        // `auto` still runs a real verification identically: the pool
        // further clamps workers to the task count (a regression test
        // for the worker clamp — see pool::run_ordered).
        let p = write_tmp(
            "suite_auto.cob",
            "forward const_prop {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let strip_times = |s: String| -> Vec<String> {
            // "… proved in 6.9ms" → "… proved" (wall-clock is the one
            // legitimately nondeterministic byte range).
            s.lines()
                .map(|l| l.split(" in ").next().unwrap_or(l).to_string())
                .collect()
        };
        let auto = run_cli(&["verify".into(), p.clone(), "--jobs".into(), "auto".into()]).unwrap();
        let seq = run_cli(&["verify".into(), p.clone()]).unwrap();
        assert_eq!(strip_times(auto), strip_times(seq));
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn verify_parallel_jobs_proves_the_suite() {
        let p = write_tmp(
            "suite_par.cob",
            "forward const_prop {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let out = run_cli(&["verify".into(), p.clone(), "--jobs".into(), "4".into()]).unwrap();
        assert!(out.contains("all optimizations proved sound"), "{out}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn verify_journal_resume_reports_cached_obligations() {
        let suite = write_tmp(
            "suite_j.cob",
            "forward const_prop {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let journal = std::env::temp_dir().join(format!(
            "cobalt_cli_journal_{}.cobj",
            std::process::id()
        ));
        std::fs::remove_file(&journal).ok();
        let j = journal.to_string_lossy().into_owned();
        // Cold run: everything fresh, no cache note.
        let cold = run_cli(&["verify".into(), suite.clone(), "--journal".into(), j.clone()])
            .unwrap();
        assert!(cold.contains("all optimizations proved sound"), "{cold}");
        assert!(!cold.contains("cached"), "{cold}");
        // Warm run (default --journal semantics = resume): all cached.
        let warm = run_cli(&["verify".into(), suite.clone(), "--journal".into(), j.clone()])
            .unwrap();
        assert!(warm.contains("cached, 0 fresh"), "{warm}");
        // --fresh wipes the cache: back to a cold run.
        let fresh = run_cli(&[
            "verify".into(),
            suite.clone(),
            "--journal".into(),
            j.clone(),
            "--fresh".into(),
        ])
        .unwrap();
        assert!(!fresh.contains("cached"), "{fresh}");
        std::fs::remove_file(&journal).ok();
        std::fs::remove_file(suite).ok();
    }

    #[test]
    fn verify_journal_flag_errors_are_typed_exit_1() {
        // Unopenable journal path: typed CLI error, exit 1 — not a
        // panic, not an unwrap (the file-I/O audit regression).
        let err = run_cli(&[
            "verify".into(),
            "--journal".into(),
            "/nonexistent-dir/sub/j.cobj".into(),
        ])
        .unwrap_err();
        assert_eq!(err.code, 1, "{}", err.msg);
        assert!(err.msg.contains("opening journal"), "{}", err.msg);
        // Mode flags without --journal, and conflicting mode flags.
        let err = run_cli(&["verify".into(), "--resume".into()]).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.msg.contains("require --journal"), "{}", err.msg);
        let err = run_cli(&[
            "verify".into(),
            "--journal".into(),
            "j".into(),
            "--resume".into(),
            "--fresh".into(),
        ])
        .unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.msg.contains("mutually exclusive"), "{}", err.msg);
    }

    #[test]
    fn verify_journal_write_fault_degrades_to_uncached() {
        let suite = write_tmp(
            "suite_jf.cob",
            "forward const_prop {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let journal = std::env::temp_dir().join(format!(
            "cobalt_cli_journal_fault_{}.cobj",
            std::process::id()
        ));
        std::fs::remove_file(&journal).ok();
        let out = cobalt_support::fault::with_faults("journal.write:fail@1", || {
            run_cli(&[
                "verify".into(),
                suite.clone(),
                "--journal".into(),
                journal.to_string_lossy().into_owned(),
            ])
        })
        .unwrap();
        assert!(out.contains("journaling disabled"), "{out}");
        assert!(out.contains("all optimizations proved sound"), "{out}");
        std::fs::remove_file(&journal).ok();
        std::fs::remove_file(suite).ok();
    }

    #[test]
    fn lint_builtin_registry_is_clean() {
        let out = run_cli(&["lint".into()]).unwrap();
        assert!(out.contains("0 error(s)"), "{out}");
    }

    #[test]
    fn lint_flags_il_defects_with_exit_4() {
        // Branch target 9 is out of range: IL001, an error.
        let p = write_tmp(
            "lint_bad.il",
            "proc main(x) { if x goto 9 else 1; return x; }",
        );
        let err = run_cli(&["lint".into(), p.clone()]).unwrap_err();
        assert_eq!(err.code, EXIT_LINT);
        assert!(err.out.as_deref().unwrap_or("").contains("IL001"), "{err:?}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn lint_deny_warn_promotes_warnings() {
        // Statements after the first return are unreachable: IL003,
        // a warning — passing by default, failing under --deny warn.
        let p = write_tmp(
            "lint_warn.il",
            "proc main(x) { return x; skip; return x; }",
        );
        let ok = run_cli(&["lint".into(), p.clone()]).unwrap();
        assert!(ok.contains("IL003"), "{ok}");
        let err = run_cli(&["lint".into(), p.clone(), "--deny".into(), "warn".into()])
            .unwrap_err();
        assert_eq!(err.code, EXIT_LINT, "{}", err.msg);
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn lint_json_emits_one_object_per_line() {
        let p = write_tmp(
            "lint_json.il",
            "proc main(x) { if x goto 9 else 1; return x; }",
        );
        let err = run_cli(&["lint".into(), p.clone(), "--json".into()]).unwrap_err();
        let out = err.out.expect("json report on stdout");
        assert!(!out.is_empty());
        for line in out.lines() {
            assert!(
                line.starts_with("{\"code\":\"") && line.ends_with('}'),
                "not a JSON object line: {line}"
            );
        }
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn lint_rejects_lint_suite_rules_and_bad_deny_value() {
        // A suite rule whose template uses an unbound constant: CL001.
        let p = write_tmp(
            "lint_suite.cob",
            "forward broken {
                stmt(Y := D) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let err = run_cli(&["lint".into(), p.clone()]).unwrap_err();
        assert_eq!(err.code, EXIT_LINT, "{}", err.msg);
        assert!(err.out.as_deref().unwrap_or("").contains("CL001"), "{err:?}");
        std::fs::remove_file(p).ok();
        let bad = run_cli(&["lint".into(), "--deny".into(), "error".into()]).unwrap_err();
        assert_eq!(bad.code, 1);
    }

    #[test]
    fn lint_fault_point_fails_the_run() {
        let err = cobalt_support::fault::with_faults("lint.rule:fail@1", || {
            run_cli(&["lint".into()])
        })
        .unwrap_err();
        assert_eq!(err.code, EXIT_LINT, "{}", err.msg);
        assert!(err.out.as_deref().unwrap_or("").contains("CL000"), "{err:?}");
    }

    /// Full serve/client loop through `run_cli` itself: daemon on an
    /// ephemeral port (rendezvous via --port-file), one client verify,
    /// one warm repeat, then an in-band shutdown — asserting the
    /// client's stdout is byte-identical between fresh and cached.
    #[test]
    fn serve_and_client_commands_round_trip() {
        let suite = write_tmp(
            "serve_cli.cob",
            "forward const_prop {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let pf_path = std::env::temp_dir().join(format!(
            "cobalt_cli_{}_serve.port",
            std::process::id()
        ));
        std::fs::remove_file(&pf_path).ok();
        let pf = pf_path.to_string_lossy().into_owned();
        let server = {
            let pf = pf.clone();
            std::thread::spawn(move || {
                run_cli(&["serve".into(), "--port-file".into(), pf, "--jobs".into(), "2".into()])
            })
        };
        // Wait for the port file (the daemon writes it after bind).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !pf_path.exists() {
            assert!(std::time::Instant::now() < deadline, "daemon never bound");
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let client = |extra: &[&str]| {
            let mut args: Vec<String> = vec!["client".into()];
            args.extend(extra.iter().map(|s| s.to_string()));
            args.extend(["--port-file".into(), pf.clone()]);
            run_cli(&args)
        };
        assert_eq!(client(&["ping"]).unwrap(), "pong\n");
        let cold = client(&["verify", &suite]).unwrap();
        assert!(cold.contains("proved"), "{cold}");
        let warm = client(&["verify", &suite]).unwrap();
        assert_eq!(cold, warm, "cached replay must be byte-identical");
        let stats = client(&["stats"]).unwrap();
        assert!(stats.contains("cache_hits=1"), "{stats}");
        assert_eq!(client(&["shutdown"]).unwrap(), "daemon draining\n");
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("1 fresh"), "{summary}");
        assert!(summary.contains("1 cached"), "{summary}");
        std::fs::remove_file(&pf_path).ok();
        std::fs::remove_file(suite).ok();
    }

    #[test]
    fn client_without_daemon_is_a_typed_connect_error() {
        // Bind-then-drop to find a dead port; 0 retries keeps it fast.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = run_cli(&[
            "client".into(),
            "ping".into(),
            "--addr".into(),
            addr,
            "--retries".into(),
            "0".into(),
        ])
        .unwrap_err();
        assert_eq!(err.code, 1, "{}", err.msg);
        assert!(err.msg.contains("connect"), "{}", err.msg);
    }

    #[test]
    fn serve_and_client_flags_are_validated() {
        let err = run_cli(&["serve".into(), "--queue".into(), "0".into()]).unwrap_err();
        assert!(err.msg.contains("--queue"), "{}", err.msg);
        let err = run_cli(&["serve".into(), "stray".into()]).unwrap_err();
        assert!(err.msg.contains("unexpected argument"), "{}", err.msg);
        let err = run_cli(&["client".into()]).unwrap_err();
        assert!(err.msg.contains("expected an operation"), "{}", err.msg);
        let err = run_cli(&["client".into(), "dance".into()]).unwrap_err();
        assert!(err.msg.contains("unknown operation"), "{}", err.msg);
        let err = run_cli(&["client".into(), "optimize".into()]).unwrap_err();
        assert!(err.msg.contains("expected one program file"), "{}", err.msg);
        // --timeout is the daemon-side budget; on the client it is a
        // typed error, not a silently reinterpreted socket deadline.
        let err = run_cli(&[
            "client".into(),
            "ping".into(),
            "--timeout".into(),
            "5".into(),
        ])
        .unwrap_err();
        assert!(err.msg.contains("--io-timeout"), "{}", err.msg);
        for bad in ["abc", "0", "-1"] {
            let err = run_cli(&[
                "client".into(),
                "ping".into(),
                "--io-timeout".into(),
                bad.into(),
            ])
            .unwrap_err();
            assert!(err.msg.contains("--io-timeout"), "{}", err.msg);
        }
    }

    #[test]
    fn validate_command_checks_pairs() {
        let a = write_tmp("tv_a.il", "proc main(x) { decl a; decl c; a := 2; c := a; return c; }");
        let b = write_tmp("tv_b.il", "proc main(x) { decl a; decl c; a := 2; c := 2; return c; }");
        let out = run_cli(&["validate".into(), a.clone(), b.clone()]).unwrap();
        assert!(out.contains("validated"), "{out}");
        let bad = write_tmp("tv_c.il", "proc main(x) { decl a; decl c; a := 2; c := 3; return c; }");
        assert!(run_cli(&["validate".into(), a.clone(), bad.clone()]).is_err());
        for f in [a, b, bad] {
            std::fs::remove_file(f).ok();
        }
    }
}
