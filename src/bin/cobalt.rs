//! The `cobalt` command-line tool: run, optimize, verify, and validate
//! from the shell.
//!
//! ```text
//! cobalt run <prog.il> [--arg N]
//! cobalt optimize <prog.il> [--passes a,b,…|all] [--rounds N] [--recursive-dae]
//! cobalt verify [<suite.cob>] [--include-buggy]
//! cobalt validate <orig.il> <new.il>
//! cobalt hunt <name|suite.cob> [--tries N]
//! ```

use cobalt::dsl::{LabelEnv, Optimization, PureAnalysis};
use cobalt::engine::Engine;
use cobalt::il::{parse_program, pretty_program, Interp};
use cobalt::verify::{SemanticMeanings, Verifier};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cobalt: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  cobalt run <prog.il> [--arg N]
      parse, validate, and interpret main(N) (default N = 0)
  cobalt optimize <prog.il> [--passes a,b|all] [--rounds N] [--recursive-dae]
      run the (machine-verified) optimization suite and print the result
  cobalt verify [<suite.cob>] [--include-buggy]
      prove every optimization sound; with no file, the built-in suite
  cobalt trace <prog.il> [--arg N]
      interpret main(N) printing every executed statement
  cobalt validate <orig.il> <new.il>
      translation validation of a single compile (the baseline approach)
  cobalt hunt <name|suite.cob> [--tries N]
      search for a counterexample program for a (presumably unsound)
      optimization; `name` may be `buggy` for the built-in §6 variant
";

/// Entry point, factored for testing.
fn run_cli(args: &[String]) -> Result<String, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("optimize") => cmd_optimize(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("hunt") => cmd_hunt(&args[1..]),
        Some("--help") | Some("-h") | None => Ok(USAGE.to_string()),
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == flag)
        .map(|w| w[1].as_str())
}

fn positional(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // Flags with values: --arg, --passes, --rounds, --tries.
            skip = matches!(a.as_str(), "--arg" | "--passes" | "--rounds" | "--tries")
                && i + 1 < args.len();
            continue;
        }
        out.push(a.as_str());
    }
    out
}

fn cmd_run(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(format!("run: expected one program file\n{USAGE}"));
    };
    let arg: i64 = flag_value(args, "--arg")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("--arg: {e}"))?;
    let prog = parse_program(&read(path)?).map_err(|e| e.to_string())?;
    cobalt::il::validate(&prog).map_err(|e| e.to_string())?;
    let result = Interp::new(&prog).run(arg).map_err(|e| e.to_string())?;
    Ok(format!("main({arg}) = {result}\n"))
}

fn cmd_trace(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(format!("trace: expected one program file\n{USAGE}"));
    };
    let arg: i64 = flag_value(args, "--arg")
        .unwrap_or("0")
        .parse()
        .map_err(|e| format!("--arg: {e}"))?;
    let prog = parse_program(&read(path)?).map_err(|e| e.to_string())?;
    cobalt::il::validate(&prog).map_err(|e| e.to_string())?;
    let (trace, result) = Interp::new(&prog).with_fuel(10_000).run_traced(arg);
    let mut out = String::new();
    for entry in &trace {
        out.push_str(&format!("{entry}\n"));
    }
    match result {
        Ok(v) => out.push_str(&format!("=> main({arg}) = {v} ({} steps)\n", trace.len())),
        Err(e) => out.push_str(&format!("=> {e} (after {} steps)\n", trace.len())),
    }
    Ok(out)
}

fn suite_by_names(names: &str) -> Result<Vec<Optimization>, String> {
    if names == "all" {
        return Ok(cobalt::opts::default_pipeline());
    }
    let registry = cobalt::opts::all_optimizations();
    names
        .split(',')
        .map(|n| {
            registry
                .iter()
                .find(|o| o.name == n)
                .cloned()
                .ok_or_else(|| format!("unknown pass `{n}`"))
        })
        .collect()
}

fn cmd_optimize(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [path] = pos.as_slice() else {
        return Err(format!("optimize: expected one program file\n{USAGE}"));
    };
    let rounds: usize = flag_value(args, "--rounds")
        .unwrap_or("4")
        .parse()
        .map_err(|e| format!("--rounds: {e}"))?;
    let passes = suite_by_names(flag_value(args, "--passes").unwrap_or("all"))?;
    let prog = parse_program(&read(path)?).map_err(|e| e.to_string())?;
    cobalt::il::validate(&prog).map_err(|e| e.to_string())?;
    let engine = Engine::new(LabelEnv::standard());
    let (mut out, n) = engine
        .optimize_program(&prog, &cobalt::opts::all_analyses(), &passes, rounds)
        .map_err(|e| e.to_string())?;
    let mut extra = 0;
    if args.iter().any(|a| a == "--recursive-dae") {
        let mut next = out.clone();
        for proc in &out.procs {
            let (p, removed) =
                cobalt::engine::apply_recursive(&engine, proc, &cobalt::opts::dae())
                    .map_err(|e| e.to_string())?;
            extra += removed.len();
            next = next.with_proc_replaced(p);
        }
        out = next;
    }
    Ok(format!(
        "// {} rewrites applied{}\n{}",
        n,
        if extra > 0 {
            format!(" (+{extra} by recursive DAE)")
        } else {
            String::new()
        },
        pretty_program(&out)
    ))
}

fn load_suite(path: Option<&str>) -> Result<(Vec<Optimization>, Vec<PureAnalysis>), String> {
    match path {
        None => Ok((cobalt::opts::all_optimizations(), cobalt::opts::all_analyses())),
        Some(p) => {
            let suite = cobalt::dsl::parse_suite(&read(p)?).map_err(|e| e.to_string())?;
            Ok((suite.optimizations, suite.analyses))
        }
    }
}

fn cmd_verify(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let (opts, analyses) = load_suite(pos.first().copied())?;
    let verifier = Verifier::new(LabelEnv::standard(), SemanticMeanings::standard());
    let mut out = String::new();
    let mut all_ok = true;
    for a in &analyses {
        let report = verifier.verify_analysis(a).map_err(|e| e.to_string())?;
        all_ok &= report.all_proved();
        out.push_str(&report.summary());
        out.push('\n');
        for o in report.outcomes.iter().filter(|o| !o.proved) {
            out.push_str(&format!("  FAILED {}\n", o.id));
        }
    }
    for o in &opts {
        let report = verifier.verify_optimization(o).map_err(|e| e.to_string())?;
        all_ok &= report.all_proved();
        out.push_str(&report.summary());
        out.push('\n');
        for oc in report.outcomes.iter().filter(|oc| !oc.proved) {
            out.push_str(&format!("  FAILED {}\n", oc.id));
        }
    }
    if args.iter().any(|a| a == "--include-buggy") {
        for o in cobalt::opts::buggy_optimizations() {
            let report = verifier.verify_optimization(&o).map_err(|e| e.to_string())?;
            let rejected = !report.all_proved();
            // A buggy variant that verifies is itself a soundness
            // regression: fail the command.
            all_ok &= rejected;
            out.push_str(&format!(
                "{} — {}\n",
                report.summary(),
                if rejected {
                    "correctly rejected"
                } else {
                    "UNEXPECTEDLY PROVED"
                }
            ));
        }
    }
    if all_ok {
        out.push_str("all optimizations proved sound\n");
        Ok(out)
    } else {
        Err(format!("{out}some obligations failed"))
    }
}

fn cmd_validate(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [orig_path, new_path] = pos.as_slice() else {
        return Err(format!("validate: expected two program files\n{USAGE}"));
    };
    let orig = parse_program(&read(orig_path)?).map_err(|e| e.to_string())?;
    let new = parse_program(&read(new_path)?).map_err(|e| e.to_string())?;
    let mut out = String::new();
    for proc in &orig.procs {
        let Some(new_proc) = new.proc(&proc.name) else {
            return Err(format!("procedure `{}` missing from the transformed program", proc.name));
        };
        let report = cobalt::tv::validate_proc(proc, new_proc).map_err(|e| e.to_string())?;
        for site in &report.sites {
            out.push_str(&format!(
                "{}:{} {} — {}\n",
                proc.name,
                site.index,
                if site.validated { "ok" } else { "REJECTED" },
                site.reason
            ));
        }
        if !report.validated() {
            return Err(format!("{out}validation failed"));
        }
    }
    out.push_str("validated\n");
    Ok(out)
}

fn cmd_hunt(args: &[String]) -> Result<String, String> {
    let pos = positional(args);
    let [what] = pos.as_slice() else {
        return Err(format!("hunt: expected an optimization name or suite file\n{USAGE}"));
    };
    let tries: u64 = flag_value(args, "--tries")
        .unwrap_or("3000")
        .parse()
        .map_err(|e| format!("--tries: {e}"))?;
    let opt = if *what == "buggy" {
        cobalt::opts::buggy::load_elim_no_alias()
    } else if what.ends_with(".cob") {
        let suite = cobalt::dsl::parse_suite(&read(what)?).map_err(|e| e.to_string())?;
        suite
            .optimizations
            .into_iter()
            .next()
            .ok_or_else(|| "suite file contains no optimizations".to_string())?
    } else {
        cobalt::opts::all_optimizations()
            .into_iter()
            .find(|o| &o.name == what)
            .ok_or_else(|| format!("unknown optimization `{what}`"))?
    };
    let cfg = cobalt::synth::SynthConfig {
        tries,
        ..Default::default()
    };
    match cobalt::synth::find_counterexample(&opt, &cfg) {
        Some(cx) => Ok(format!("counterexample found for `{}`:\n{cx}", opt.name)),
        None => Ok(format!(
            "no counterexample found for `{}` in {tries} tries\n",
            opt.name
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_tmp(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("cobalt_cli_{name}_{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run_cli(&[]).unwrap().contains("usage"));
        assert!(run_cli(&["bogus".into()]).is_err());
    }

    #[test]
    fn run_command_interprets() {
        let p = write_tmp("run.il", "proc main(x) { decl y; y := x + 1; return y; }");
        let out = run_cli(&["run".into(), p.clone(), "--arg".into(), "41".into()]).unwrap();
        assert_eq!(out, "main(41) = 42\n");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn optimize_command_rewrites() {
        let p = write_tmp(
            "opt.il",
            "proc main(x) { decl a; decl c; a := 2; c := a; return c; }",
        );
        let out = run_cli(&[
            "optimize".into(),
            p.clone(),
            "--passes".into(),
            "const_prop".into(),
        ])
        .unwrap();
        assert!(out.contains("c := 2"), "{out}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn verify_command_on_suite_file() {
        let p = write_tmp(
            "suite.cob",
            "forward const_prop {
                stmt(Y := C) followed by !mayDef(Y)
                until X := Y => X := C
                with witness eta(Y) == C
            }",
        );
        let out = run_cli(&["verify".into(), p.clone()]).unwrap();
        assert!(out.contains("all optimizations proved sound"), "{out}");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn validate_command_checks_pairs() {
        let a = write_tmp("tv_a.il", "proc main(x) { decl a; decl c; a := 2; c := a; return c; }");
        let b = write_tmp("tv_b.il", "proc main(x) { decl a; decl c; a := 2; c := 2; return c; }");
        let out = run_cli(&["validate".into(), a.clone(), b.clone()]).unwrap();
        assert!(out.contains("validated"), "{out}");
        let bad = write_tmp("tv_c.il", "proc main(x) { decl a; decl c; a := 2; c := 3; return c; }");
        assert!(run_cli(&["validate".into(), a.clone(), bad.clone()]).is_err());
        for f in [a, b, bad] {
            std::fs::remove_file(f).ok();
        }
    }
}
